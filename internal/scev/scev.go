// Package scev is a miniature ScalarEvolution stand-in (Section 5.1): it
// classifies natural loops whose trip counts are constant and statically
// resolvable, so that functions containing only such loops can be pruned
// from instrumentation before any dynamic analysis runs.
package scev

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// TripCount classifies a loop's statically derived iteration count.
type TripCount struct {
	// Constant is true when every exit condition compares a basic induction
	// variable (constant init, constant step) against a constant bound, or
	// constants against constants.
	Constant bool
	// Count is the resolved iteration count when Constant and the exit is
	// the canonical i < bound form; -1 when constant but unresolved.
	Count int64
}

// FuncClass is the static classification of one function.
type FuncClass struct {
	Name string
	// Loops maps loop ID to its trip-count classification.
	Loops map[int]TripCount
	// AllConstant is true when the function has no loops or only loops with
	// constant trip counts: its performance model is parameter-independent
	// unless a relevant library call is present.
	AllConstant bool
	// CallsRelevantLibrary is true when the function directly calls a
	// function the library database marks performance-relevant (e.g. MPI).
	CallsRelevantLibrary bool
	// Pruned is AllConstant && !CallsRelevantLibrary: the static prune set.
	Pruned bool
	// NumLoops is the total natural loop count.
	NumLoops int
	// ConstLoops is the number of loops with constant trip counts.
	ConstLoops int
}

// regFacts holds per-register def information within one function.
type regFacts struct {
	// constVal[r] is set when all defs of r are OpConst with the same value.
	constVal map[ir.Reg]int64
	// defs[r] lists (block, instr index) of all definitions of r.
	defs map[ir.Reg][][2]int
}

func collectFacts(f *ir.Function) *regFacts {
	rf := &regFacts{constVal: make(map[ir.Reg]int64), defs: make(map[ir.Reg][][2]int)}
	type def struct {
		op  ir.Opcode
		imm int64
	}
	single := make(map[ir.Reg][]def)
	for bi, blk := range f.Blocks {
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			if in.Dst == ir.NoReg || in.Op.IsTerm() || in.Op == ir.OpStore || in.Op == ir.OpWork {
				continue
			}
			rf.defs[in.Dst] = append(rf.defs[in.Dst], [2]int{bi, ii})
			single[in.Dst] = append(single[in.Dst], def{in.Op, in.Imm})
		}
	}
	// Seed: registers whose every def is the same OpConst.
	for r, ds := range single {
		allConst := true
		var v int64
		for i, d := range ds {
			if d.op != ir.OpConst || (i > 0 && d.imm != v) {
				allConst = false
				break
			}
			v = d.imm
		}
		if allConst && len(ds) > 0 {
			rf.constVal[r] = v
		}
	}
	// Propagate through pure ops whose operands are constant. Iterate to a
	// fixed point; the register graph is tiny per function.
	changed := true
	for changed {
		changed = false
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Dst == ir.NoReg || in.Op.IsTerm() {
					continue
				}
				if _, done := rf.constVal[in.Dst]; done {
					continue
				}
				if len(rf.defs[in.Dst]) != 1 {
					continue
				}
				switch in.Op {
				case ir.OpMov, ir.OpNeg, ir.OpNot:
					if v, ok := rf.constVal[in.A]; ok {
						rf.constVal[in.Dst] = evalUnary(in.Op, v)
						changed = true
					}
				case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd,
					ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpMin, ir.OpMax:
					va, oka := rf.constVal[in.A]
					vb, okb := rf.constVal[in.B]
					if oka && okb {
						rf.constVal[in.Dst] = evalBinary(in.Op, va, vb)
						changed = true
					}
				}
			}
		}
	}
	return rf
}

func evalUnary(op ir.Opcode, a int64) int64 {
	switch op {
	case ir.OpMov:
		return a
	case ir.OpNeg:
		return -a
	case ir.OpNot:
		if a == 0 {
			return 1
		}
		return 0
	}
	return 0
}

func evalBinary(op ir.Opcode, a, b int64) int64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		if b < 0 || b > 63 {
			return 0
		}
		return a << uint(b)
	case ir.OpShr:
		if b < 0 || b > 63 {
			return 0
		}
		return a >> uint(b)
	case ir.OpMin:
		if a < b {
			return a
		}
		return b
	case ir.OpMax:
		if a > b {
			return a
		}
		return b
	}
	return 0
}

// inductionInfo describes a basic induction variable of a loop: constant
// initial value outside the loop and constant additive step inside it.
type inductionInfo struct {
	init int64
	step int64
	ok   bool
}

func classifyInduction(f *ir.Function, l *cfg.Loop, rf *regFacts, r ir.Reg) inductionInfo {
	var info inductionInfo
	var sawInit, sawStep bool
	for _, d := range rf.defs[r] {
		blk, ii := d[0], d[1]
		in := &f.Blocks[blk].Instrs[ii]
		inside := l.Contains(blk)
		if !inside {
			// Initialization: Mov from constant or a Const.
			switch in.Op {
			case ir.OpConst:
				info.init = in.Imm
			case ir.OpMov:
				v, ok := rf.constVal[in.A]
				if !ok {
					return inductionInfo{}
				}
				info.init = v
			default:
				return inductionInfo{}
			}
			if sawInit {
				return inductionInfo{} // multiple inits: give up
			}
			sawInit = true
			continue
		}
		// Inside the loop only the canonical update is allowed:
		// Mov r, t where t = Add/Sub(r, constStep).
		if in.Op != ir.OpMov {
			return inductionInfo{}
		}
		src := in.A
		if len(rf.defs[src]) != 1 {
			return inductionInfo{}
		}
		sd := rf.defs[src][0]
		sin := &f.Blocks[sd[0]].Instrs[sd[1]]
		if sin.Op != ir.OpAdd && sin.Op != ir.OpSub {
			return inductionInfo{}
		}
		var stepReg ir.Reg
		switch {
		case sin.A == r:
			stepReg = sin.B
		case sin.B == r && sin.Op == ir.OpAdd:
			stepReg = sin.A
		default:
			return inductionInfo{}
		}
		sv, ok := rf.constVal[stepReg]
		if !ok {
			return inductionInfo{}
		}
		if sin.Op == ir.OpSub {
			sv = -sv
		}
		if sawStep && sv != info.step {
			return inductionInfo{}
		}
		info.step = sv
		sawStep = true
	}
	info.ok = sawInit && sawStep && info.step != 0
	return info
}

// AnalyzeLoop derives the trip-count classification for one loop.
func AnalyzeLoop(f *ir.Function, l *cfg.Loop, rf *regFacts) TripCount {
	if len(l.ExitBranches) == 0 {
		return TripCount{}
	}
	resolved := int64(-1)
	for _, e := range l.ExitBranches {
		t := f.Blocks[e.Block].Term()
		if t.Op != ir.OpBr {
			return TripCount{}
		}
		// The condition must be a comparison defined in the same block.
		cond := findDef(f, e.Block, t.A)
		if cond == nil {
			return TripCount{}
		}
		switch cond.Op {
		case ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE, ir.OpCmpNE, ir.OpCmpEQ:
		default:
			return TripCount{}
		}
		_, aConst := rf.constVal[cond.A]
		_, bConst := rf.constVal[cond.B]
		switch {
		case aConst && bConst:
			// Degenerate but constant.
		case bConst:
			ind := classifyInduction(f, l, rf, cond.A)
			if !ind.ok {
				return TripCount{}
			}
			if cond.Op == ir.OpCmpLT && ind.step > 0 {
				hi := rf.constVal[cond.B]
				n := (hi - ind.init + ind.step - 1) / ind.step
				if n < 0 {
					n = 0
				}
				resolved = n
			}
		case aConst:
			ind := classifyInduction(f, l, rf, cond.B)
			if !ind.ok {
				return TripCount{}
			}
		default:
			return TripCount{}
		}
	}
	return TripCount{Constant: true, Count: resolved}
}

func findDef(f *ir.Function, block int, r ir.Reg) *ir.Instr {
	blk := f.Blocks[block]
	for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
		in := &blk.Instrs[ii]
		if in.Dst == r && !in.Op.IsTerm() {
			return in
		}
	}
	return nil
}

// AnalyzeFunc classifies all loops of f. relevantCall reports whether a
// callee name belongs to the performance-relevant library set.
func AnalyzeFunc(f *ir.Function, relevantCall func(string) bool) *FuncClass {
	g := cfg.Build(f)
	forest := cfg.FindLoops(g)
	rf := collectFacts(f)
	fc := &FuncClass{
		Name:     f.Name,
		Loops:    make(map[int]TripCount),
		NumLoops: len(forest.Loops),
	}
	fc.AllConstant = true
	for _, l := range forest.Loops {
		tc := AnalyzeLoop(f, l, rf)
		fc.Loops[l.ID] = tc
		if tc.Constant {
			fc.ConstLoops++
		} else {
			fc.AllConstant = false
		}
	}
	if relevantCall != nil {
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op == ir.OpCall && relevantCall(in.Sym) {
					fc.CallsRelevantLibrary = true
				}
			}
		}
	}
	fc.Pruned = fc.AllConstant && !fc.CallsRelevantLibrary
	return fc
}

// AnalyzeModule classifies every function of m.
func AnalyzeModule(m *ir.Module, relevantCall func(string) bool) map[string]*FuncClass {
	out := make(map[string]*FuncClass, len(m.FuncList))
	for _, f := range m.FuncList {
		out[f.Name] = AnalyzeFunc(f, relevantCall)
	}
	return out
}
