package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// buildNest constructs for(i<p) { for(j<q) { work } }; for(k<r) { work }.
func buildNest(m *ir.Module) *ir.Function {
	b := ir.NewFunc(m, "nest", 3)
	one := b.Const(1)
	b.For(b.Const(0), b.Param(0), one, func(i ir.Reg) {
		b.For(b.Const(0), b.Param(1), b.Const(1), func(j ir.Reg) {
			b.Work(b.Const(1))
		})
	})
	b.For(b.Const(0), b.Param(2), b.Const(1), func(k ir.Reg) {
		b.Work(b.Const(1))
	})
	b.RetVoid()
	return b.Finish()
}

func TestDominatorsStraightLine(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 1)
	blk1 := b.NewBlock("b1")
	b.Jmp(blk1)
	b.SetBlock(blk1)
	b.RetVoid()
	f := b.Finish()

	g := Build(f)
	idom := Dominators(g)
	if idom[0] != 0 {
		t.Fatalf("idom[entry] = %d, want 0", idom[0])
	}
	if idom[1] != 0 {
		t.Fatalf("idom[1] = %d, want 0", idom[1])
	}
	if !Dominates(idom, 0, 1) {
		t.Fatal("entry should dominate block 1")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 1)
	out := b.Const(0)
	b.If(b.Param(0), func() { b.MovTo(out, b.Const(1)) }, func() { b.MovTo(out, b.Const(2)) })
	b.Ret(out)
	f := b.Finish()

	g := Build(f)
	idom := Dominators(g)
	// The join block's idom must be the branch block (entry).
	var joinIdx = -1
	for i, blk := range f.Blocks {
		if blk.Name == "join" {
			joinIdx = i
		}
	}
	if joinIdx < 0 {
		t.Fatal("no join block")
	}
	if idom[joinIdx] != 0 {
		t.Fatalf("idom[join] = %d, want entry 0", idom[joinIdx])
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewFunc(m, "f", 1)
	out := b.Const(0)
	b.If(b.Param(0), func() { b.MovTo(out, b.Const(1)) }, func() { b.MovTo(out, b.Const(2)) })
	b.Ret(out)
	f := b.Finish()

	g := Build(f)
	ipdom := PostDominators(g)
	joinIdx := -1
	for i, blk := range f.Blocks {
		if blk.Name == "join" {
			joinIdx = i
		}
	}
	if ipdom[0] != joinIdx {
		t.Fatalf("ipdom[entry] = %d, want join %d", ipdom[0], joinIdx)
	}
}

func TestFindLoopsNestAndSequence(t *testing.T) {
	m := ir.NewModule("t")
	f := buildNest(m)
	g := Build(f)
	forest := FindLoops(g)

	if len(forest.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(forest.Loops))
	}
	if forest.Irreducible {
		t.Fatal("builder loops must be reducible")
	}
	if len(forest.Roots) != 2 {
		t.Fatalf("root loops = %d, want 2 (outer + sequential)", len(forest.Roots))
	}
	depth2 := 0
	for _, l := range forest.Loops {
		if l.Depth == 2 {
			depth2++
			if l.Parent == nil {
				t.Fatal("depth-2 loop must have a parent")
			}
		}
		if len(l.ExitBranches) == 0 {
			t.Fatalf("loop %v has no exit branch", l)
		}
	}
	if depth2 != 1 {
		t.Fatalf("depth-2 loops = %d, want 1", depth2)
	}
}

func TestLoopOfBranch(t *testing.T) {
	m := ir.NewModule("t")
	f := buildNest(m)
	g := Build(f)
	forest := FindLoops(g)
	for _, l := range forest.Loops {
		for _, e := range l.ExitBranches {
			got := forest.LoopOfBranch(e.Block)
			if got == nil {
				t.Fatalf("LoopOfBranch(%d) = nil", e.Block)
			}
			if !got.Contains(e.Block) {
				t.Fatalf("LoopOfBranch(%d) returned non-containing loop", e.Block)
			}
		}
	}
	if forest.LoopOfBranch(0) != nil {
		t.Fatal("entry block is not a loop exit")
	}
}

func TestClassifyEdgeAndExitLoops(t *testing.T) {
	m := ir.NewModule("t")
	f := buildNest(m)
	g := Build(f)
	forest := FindLoops(g)

	for _, l := range forest.Loops {
		// Every latch edge classifies as EdgeLatch of its loop.
		for _, latch := range l.Latches {
			kind, got := forest.ClassifyEdge(latch, l.Header)
			if kind != EdgeLatch || got != l {
				t.Fatalf("edge %d->%d: kind %v loop %v, want latch of %v", latch, l.Header, kind, got, l)
			}
		}
		// An edge into the header from outside the loop is an entry.
		for _, p := range g.Pred[l.Header] {
			if l.Contains(p) {
				continue
			}
			kind, got := forest.ClassifyEdge(p, l.Header)
			if kind != EdgeEntry || got != l {
				t.Fatalf("edge %d->%d: kind %v, want entry of %v", p, l.Header, kind, got)
			}
		}
		// ExitLoops covers every exit branch of the loop, in Loops order.
		for _, e := range l.ExitBranches {
			found := false
			for _, el := range forest.ExitLoops(e.Block) {
				if el == l {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("ExitLoops(%d) misses loop %v", e.Block, l)
			}
		}
	}
	// Non-header targets never classify as loop events.
	for u := 0; u < len(f.Blocks); u++ {
		for _, s := range g.Succ[u] {
			if forest.ByHeader[s] != nil {
				continue
			}
			if kind, _ := forest.ClassifyEdge(u, s); kind != EdgeNone {
				t.Fatalf("edge %d->%d to non-header classified %v", u, s, kind)
			}
		}
	}
	if ls := forest.ExitLoops(0); ls != nil {
		t.Fatalf("entry block reported exit loops %v", ls)
	}
}

func TestIrreducibleDetection(t *testing.T) {
	// Two blocks jumping into each other's middle via a branch from entry:
	// entry -> A or B; A -> B; B -> A. The cycle {A,B} has two entries.
	f := &ir.Function{
		Name:    "irr",
		NumRegs: 1,
		Blocks: []*ir.Block{
			{Index: 0, Name: "entry", Instrs: []ir.Instr{
				{Op: ir.OpConst, Dst: 0, A: ir.NoReg, B: ir.NoReg, Imm: 1},
				{Op: ir.OpBr, Dst: ir.NoReg, A: 0, B: ir.NoReg, Blk0: 1, Blk1: 2},
			}},
			{Index: 1, Name: "A", Instrs: []ir.Instr{
				{Op: ir.OpBr, Dst: ir.NoReg, A: 0, B: ir.NoReg, Blk0: 2, Blk1: 3},
			}},
			{Index: 2, Name: "B", Instrs: []ir.Instr{
				{Op: ir.OpBr, Dst: ir.NoReg, A: 0, B: ir.NoReg, Blk0: 1, Blk1: 3},
			}},
			{Index: 3, Name: "exit", Instrs: []ir.Instr{
				{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg},
			}},
		},
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	forest := FindLoops(Build(f))
	if !forest.Irreducible {
		t.Fatal("expected irreducibility flag for multi-entry cycle")
	}
}

func TestCallGraphAndRecursion(t *testing.T) {
	m := ir.NewModule("t")
	leaf := ir.NewFunc(m, "leaf", 0)
	leaf.RetVoid()
	leaf.Finish()
	mid := ir.NewFunc(m, "mid", 0)
	mid.Call("leaf")
	mid.RetVoid()
	mid.Finish()
	root := ir.NewFunc(m, "root", 0)
	root.Call("mid")
	root.Call("leaf")
	root.RetVoid()
	root.Finish()

	cg := BuildCallGraph(m)
	if got := len(cg.Callees["root"]); got != 2 {
		t.Fatalf("root callees = %d, want 2", got)
	}
	if rec := cg.FindRecursion(); len(rec) != 0 {
		t.Fatalf("unexpected recursion: %v", rec)
	}
	order := TopoOrder(m, cg)
	pos := map[string]int{}
	for i, f := range order {
		pos[f.Name] = i
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["root"]) {
		t.Fatalf("topo order wrong: %v", pos)
	}
}

func TestFindRecursionDetectsCycle(t *testing.T) {
	m := ir.NewModule("t")
	a := ir.NewFunc(m, "a", 0)
	a.Call("b")
	a.RetVoid()
	a.Finish()
	bb := ir.NewFunc(m, "b", 0)
	bb.Call("a")
	bb.RetVoid()
	bb.Finish()

	cg := BuildCallGraph(m)
	rec := cg.FindRecursion()
	if len(rec) != 2 {
		t.Fatalf("recursion set = %v, want both a and b", rec)
	}
}

// randomReducibleFunc builds a random function out of nested structured
// loops and conditionals; by construction it must be reducible and the
// number of For loops must equal the detected natural loop count.
func randomReducibleFunc(seed int64) (*ir.Function, int) {
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule("rand")
	b := ir.NewFunc(m, "f", 2)
	loops := 0
	var gen func(depth int)
	gen = func(depth int) {
		n := rng.Intn(3)
		for k := 0; k <= n; k++ {
			switch {
			case depth < 3 && rng.Intn(2) == 0:
				loops++
				b.For(b.Const(0), b.Param(0), b.Const(1), func(i ir.Reg) {
					gen(depth + 1)
				})
			case rng.Intn(2) == 0:
				b.If(b.CmpLT(b.Param(0), b.Param(1)), func() {
					if depth < 3 && rng.Intn(2) == 0 {
						gen(depth + 1)
					} else {
						b.Work(b.Const(1))
					}
				}, nil)
			default:
				b.Work(b.Const(1))
			}
		}
	}
	gen(0)
	b.RetVoid()
	return b.Finish(), loops
}

func TestFindLoopsPropertyRandomStructured(t *testing.T) {
	prop := func(seed int64) bool {
		f, wantLoops := randomReducibleFunc(seed)
		forest := FindLoops(Build(f))
		return !forest.Irreducible && len(forest.Loops) == wantLoops
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorPropertyIdomDominates(t *testing.T) {
	prop := func(seed int64) bool {
		f, _ := randomReducibleFunc(seed)
		g := Build(f)
		idom := Dominators(g)
		for bidx := 1; bidx < len(f.Blocks); bidx++ {
			if !g.Reachable(bidx) {
				continue
			}
			if !Dominates(idom, idom[bidx], bidx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
