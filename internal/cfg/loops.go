package cfg

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Loop is a natural loop: the set of blocks dominated by the header that can
// reach a back edge into the header.
type Loop struct {
	ID     int
	Header int
	Blocks map[int]bool
	// Latches are blocks with a back edge to Header.
	Latches []int
	// ExitBranches lists the (block, successor-out-of-loop) conditional
	// terminators controlling loop exit: the taint sinks of Section 4.1.
	ExitBranches []ExitBranch
	Parent       *Loop
	Children     []*Loop
	Depth        int
}

// ExitBranch identifies a conditional branch that can leave the loop.
type ExitBranch struct {
	Block int // block whose terminator is the branch
	// CondReg is the branch condition register (the sink operand).
	CondReg ir.Reg
}

// Contains reports whether block b belongs to the loop body.
func (l *Loop) Contains(b int) bool { return l.Blocks[b] }

// Forest is the loop nesting forest of a function.
type Forest struct {
	Fn    *ir.Function
	Loops []*Loop // all loops, outermost-first order within each nest
	Roots []*Loop
	// ByHeader maps header block index to its innermost loop.
	ByHeader map[int]*Loop
	// InnermostAt[b] is the innermost loop containing block b (nil if none).
	InnermostAt []*Loop
	// Irreducible is true when a retreating edge targets a non-dominating
	// block: control enters a cycle through multiple paths (footnote 2).
	Irreducible bool
}

// FindLoops detects all natural loops of g via back edges (Aho-Sethi-Ullman)
// and assembles the nesting forest.
func FindLoops(g *Graph) *Forest {
	idom := Dominators(g)
	n := len(g.Fn.Blocks)
	f := &Forest{
		Fn:          g.Fn,
		ByHeader:    make(map[int]*Loop),
		InnermostAt: make([]*Loop, n),
	}

	// Collect back edges: edge u->h where h dominates u. Retreating edges
	// (present in a DFS but without domination) mark irreducibility.
	type backEdge struct{ from, to int }
	var backs []backEdge
	for u := 0; u < n; u++ {
		if !g.Reachable(u) {
			continue
		}
		for _, s := range g.Succ[u] {
			if !g.Reachable(s) {
				continue
			}
			// Retreating in RPO: target earlier than source.
			if g.PostNum[s] >= g.PostNum[u] {
				if Dominates(idom, s, u) {
					backs = append(backs, backEdge{u, s})
				} else {
					f.Irreducible = true
				}
			}
		}
	}
	sort.Slice(backs, func(i, j int) bool {
		if backs[i].to != backs[j].to {
			return backs[i].to < backs[j].to
		}
		return backs[i].from < backs[j].from
	})

	// Merge back edges sharing a header into one loop; compute the body by
	// reverse reachability from latches, bounded by the header.
	byHeader := make(map[int]*Loop)
	for _, be := range backs {
		l, ok := byHeader[be.to]
		if !ok {
			l = &Loop{Header: be.to, Blocks: map[int]bool{be.to: true}}
			byHeader[be.to] = l
		}
		l.Latches = append(l.Latches, be.from)
		// Walk predecessors from the latch until the header.
		stack := []int{be.from}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.Blocks[b] {
				continue
			}
			l.Blocks[b] = true
			for _, p := range g.Pred[b] {
				if g.Reachable(p) && !l.Blocks[p] {
					stack = append(stack, p)
				}
			}
		}
	}

	for h, l := range byHeader {
		f.ByHeader[h] = l
		f.Loops = append(f.Loops, l)
	}
	sort.Slice(f.Loops, func(i, j int) bool { return f.Loops[i].Header < f.Loops[j].Header })
	for i, l := range f.Loops {
		l.ID = i
	}

	// Nesting: loop A is parent of B if A contains B's header and A != B.
	// Choose the smallest containing loop as the parent.
	for _, inner := range f.Loops {
		var best *Loop
		for _, outer := range f.Loops {
			if outer == inner || !outer.Contains(inner.Header) {
				continue
			}
			// Skip same-header (impossible: merged) and pick tightest.
			if best == nil || len(outer.Blocks) < len(best.Blocks) {
				best = outer
			}
		}
		inner.Parent = best
		if best != nil {
			best.Children = append(best.Children, inner)
		} else {
			f.Roots = append(f.Roots, inner)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, r := range f.Roots {
		setDepth(r, 1)
	}

	// Innermost loop per block.
	for _, l := range f.Loops {
		for b := range l.Blocks {
			cur := f.InnermostAt[b]
			if cur == nil || len(l.Blocks) < len(cur.Blocks) {
				f.InnermostAt[b] = l
			}
		}
	}

	// Exit branches: conditional terminators inside the loop with at least
	// one successor outside it.
	for _, l := range f.Loops {
		for b := range l.Blocks {
			t := g.Fn.Blocks[b].Term()
			if t.Op != ir.OpBr && t.Op != ir.OpSwitch {
				continue
			}
			outside := false
			for _, s := range g.Fn.Blocks[b].Succs(nil) {
				if !l.Contains(s) {
					outside = true
					break
				}
			}
			if outside {
				l.ExitBranches = append(l.ExitBranches, ExitBranch{Block: b, CondReg: t.A})
			}
		}
		sort.Slice(l.ExitBranches, func(i, j int) bool {
			return l.ExitBranches[i].Block < l.ExitBranches[j].Block
		})
	}
	return f
}

// EdgeKind classifies a CFG edge with respect to the loop forest.
type EdgeKind uint8

// Edge kinds, in the order the dynamic taint pass checks them: a latch edge
// (back edge into a loop header) counts one iteration; an entry edge (into a
// header from outside the loop) counts one trip start; every other edge is
// plain control transfer.
const (
	EdgeNone EdgeKind = iota
	EdgeLatch
	EdgeEntry
)

// ClassifyEdge categorizes the CFG edge from->to for loop accounting,
// returning the loop the event belongs to (nil for EdgeNone). The
// classification mirrors the dynamic check order of the interpreter: a back
// edge into the header of loop L is a latch of L; otherwise an edge into a
// header from a block outside the header's innermost loop is an entry.
func (f *Forest) ClassifyEdge(from, to int) (EdgeKind, *Loop) {
	if l := f.ByHeader[to]; l != nil {
		for _, latch := range l.Latches {
			if latch == from {
				return EdgeLatch, l
			}
		}
		if !l.Contains(from) {
			return EdgeEntry, l
		}
	}
	return EdgeNone, nil
}

// ExitLoops returns the loops for which the terminator of block b is an exit
// branch, in Loops order (sorted by header) — the order in which the dynamic
// pass fires the corresponding taint sinks.
func (f *Forest) ExitLoops(b int) []*Loop {
	var out []*Loop
	for _, l := range f.Loops {
		for _, e := range l.ExitBranches {
			if e.Block == b {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// LoopOfBranch returns the innermost loop for which the terminator of block
// b is an exit branch, or nil.
func (f *Forest) LoopOfBranch(b int) *Loop {
	l := f.InnermostAt[b]
	for l != nil {
		for _, e := range l.ExitBranches {
			if e.Block == b {
				return l
			}
		}
		l = l.Parent
	}
	return nil
}

// String names a loop by function-local header for diagnostics.
func (l *Loop) String() string {
	return fmt.Sprintf("loop@b%d(depth %d, %d blocks)", l.Header, l.Depth, len(l.Blocks))
}

// CountLoops returns the total number of natural loops in module m.
func CountLoops(m *ir.Module) int {
	total := 0
	for _, fn := range m.FuncList {
		g := Build(fn)
		total += len(FindLoops(g).Loops)
	}
	return total
}
