// Package cfg provides control-flow-graph analyses over ir functions:
// dominator and post-dominator trees, natural-loop detection, loop nesting
// forests, and reducibility/recursion checks. These are the structural
// inputs of both the static pruning pass (Section 5.1 of the paper) and the
// dynamic taint sinks (loop-exit branches, Section 4.1).
package cfg

import (
	"fmt"

	"repro/internal/ir"
)

// Graph is the CFG of one function with precomputed adjacency.
type Graph struct {
	Fn    *ir.Function
	Succ  [][]int
	Pred  [][]int
	Order []int // reverse post-order from entry
	// PostNum[b] is the post-order number of block b (-1 if unreachable).
	PostNum []int
}

// Build constructs the CFG for f, including reverse post-order.
func Build(f *ir.Function) *Graph {
	n := len(f.Blocks)
	g := &Graph{
		Fn:      f,
		Succ:    make([][]int, n),
		Pred:    make([][]int, n),
		PostNum: make([]int, n),
	}
	for i := range g.PostNum {
		g.PostNum[i] = -1
	}
	for i, blk := range f.Blocks {
		g.Succ[i] = blk.Succs(nil)
		for _, s := range g.Succ[i] {
			g.Pred[s] = append(g.Pred[s], i)
		}
	}
	// Iterative DFS for post-order.
	type frame struct {
		node int
		next int
	}
	visited := make([]bool, n)
	var post []int
	stack := []frame{{node: 0}}
	visited[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(g.Succ[top.node]) {
			s := g.Succ[top.node][top.next]
			top.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		post = append(post, top.node)
		stack = stack[:len(stack)-1]
	}
	for i, b := range post {
		g.PostNum[b] = i
	}
	g.Order = make([]int, len(post))
	for i, b := range post {
		g.Order[len(post)-1-i] = b
	}
	return g
}

// Reachable reports whether block b is reachable from entry.
func (g *Graph) Reachable(b int) bool { return g.PostNum[b] >= 0 }

// Dominators computes the immediate-dominator array using the
// Cooper-Harvey-Kennedy iterative algorithm. idom[entry] == entry;
// unreachable blocks get -1.
func Dominators(g *Graph) []int {
	n := len(g.Fn.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range g.Order {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Pred[b] {
				if !g.Reachable(p) || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = g.intersect(idom, p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func (g *Graph) intersect(idom []int, b1, b2 int) int {
	for b1 != b2 {
		for g.PostNum[b1] < g.PostNum[b2] {
			b1 = idom[b1]
		}
		for g.PostNum[b2] < g.PostNum[b1] {
			b2 = idom[b2]
		}
	}
	return b1
}

// Dominates reports whether a dominates b given the idom array.
func Dominates(idom []int, a, b int) bool {
	if a == b {
		return true
	}
	for b != idom[b] {
		b = idom[b]
		if b == a {
			return true
		}
		if b == -1 {
			return false
		}
	}
	return a == b
}

// PostDominators computes immediate post-dominators on the reverse CFG.
// Functions may have several return blocks, so a virtual exit node n is
// introduced; ipdom values equal to len(blocks) mean "virtual exit".
// Blocks that cannot reach any return (infinite loops) post-dominate only
// themselves and map to the virtual exit as well.
func PostDominators(g *Graph) []int {
	n := len(g.Fn.Blocks)
	virtual := n
	// Reverse adjacency with virtual exit.
	succ := make([][]int, n+1)
	pred := make([][]int, n+1)
	for i := 0; i < n; i++ {
		t := g.Fn.Blocks[i].Term()
		if t.Op == ir.OpRet {
			succ[i] = append(succ[i], virtual)
			pred[virtual] = append(pred[virtual], i)
		}
		for _, s := range g.Succ[i] {
			succ[i] = append(succ[i], s)
			pred[s] = append(pred[s], i)
		}
	}
	// Ensure every reachable block can reach the virtual exit so that the
	// reverse DFS covers it: link blocks with no path to exit directly.
	// Post-order on reverse graph starting at virtual exit.
	postNum := make([]int, n+1)
	for i := range postNum {
		postNum[i] = -1
	}
	var post []int
	visited := make([]bool, n+1)
	var dfs func(u int)
	dfs = func(u int) {
		visited[u] = true
		for _, p := range pred[u] {
			if !visited[p] {
				dfs(p)
			}
		}
		post = append(post, u)
	}
	dfs(virtual)
	// Any reachable-from-entry block not visited (e.g. infinite loop) gets a
	// synthetic edge to virtual exit, then recompute.
	extra := false
	for i := 0; i < n; i++ {
		if g.Reachable(i) && !visited[i] {
			succ[i] = append(succ[i], virtual)
			pred[virtual] = append(pred[virtual], i)
			extra = true
		}
	}
	if extra {
		post = post[:0]
		for i := range visited {
			visited[i] = false
		}
		dfs(virtual)
	}
	for i, b := range post {
		postNum[b] = i
	}
	order := make([]int, len(post))
	for i, b := range post {
		order[len(post)-1-i] = b
	}

	ipdom := make([]int, n+1)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[virtual] = virtual
	intersect := func(b1, b2 int) int {
		for b1 != b2 {
			for postNum[b1] < postNum[b2] {
				b1 = ipdom[b1]
			}
			for postNum[b2] < postNum[b1] {
				b2 = ipdom[b2]
			}
		}
		return b1
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == virtual {
				continue
			}
			newIpdom := -1
			for _, s := range succ[b] {
				if postNum[s] == -1 || ipdom[s] == -1 {
					continue
				}
				if newIpdom == -1 {
					newIpdom = s
				} else {
					newIpdom = intersect(s, newIpdom)
				}
			}
			if newIpdom != -1 && ipdom[b] != newIpdom {
				ipdom[b] = newIpdom
				changed = true
			}
		}
	}
	return ipdom[:n]
}

// CallGraph maps each function to the set of callees appearing in its body.
type CallGraph struct {
	Callees map[string][]string
}

// BuildCallGraph scans all call instructions in m.
func BuildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{Callees: make(map[string][]string)}
	for _, f := range m.FuncList {
		seen := make(map[string]bool)
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op == ir.OpCall && !seen[in.Sym] {
					seen[in.Sym] = true
					cg.Callees[f.Name] = append(cg.Callees[f.Name], in.Sym)
				}
			}
		}
	}
	return cg
}

// FindRecursion returns the names of functions participating in a call-graph
// cycle. The paper's volume analysis rejects recursive programs and warns;
// callers use this to emit that warning.
func (cg *CallGraph) FindRecursion() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	inCycle := make(map[string]bool)
	var stack []string
	var dfs func(u string)
	dfs = func(u string) {
		color[u] = gray
		stack = append(stack, u)
		for _, v := range cg.Callees[u] {
			switch color[v] {
			case white:
				dfs(v)
			case gray:
				// Everything on the stack from v onward is in a cycle.
				for i := len(stack) - 1; i >= 0; i-- {
					inCycle[stack[i]] = true
					if stack[i] == v {
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
	}
	var names []string
	for u := range cg.Callees {
		if color[u] == white {
			dfs(u)
		}
	}
	for u := range inCycle {
		names = append(names, u)
	}
	return names
}

// TopoOrder returns functions of m in reverse-callee order (callees before
// callers) for bottom-up interprocedural passes. Recursive cycles are broken
// arbitrarily; callers should check FindRecursion first.
func TopoOrder(m *ir.Module, cg *CallGraph) []*ir.Function {
	state := make(map[string]int)
	var order []*ir.Function
	var visit func(name string)
	visit = func(name string) {
		if state[name] != 0 {
			return
		}
		state[name] = 1
		for _, c := range cg.Callees[name] {
			if _, ok := m.Funcs[c]; ok {
				visit(c)
			}
		}
		state[name] = 2
		order = append(order, m.Funcs[name])
	}
	for _, f := range m.FuncList {
		visit(f.Name)
	}
	if len(order) != len(m.FuncList) {
		panic(fmt.Sprintf("cfg: topo order lost functions: %d != %d", len(order), len(m.FuncList)))
	}
	return order
}
