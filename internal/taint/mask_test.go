package taint

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// modelTable reimplements the pre-mask label algebra — the DFSan-style
// id-allocating table with union-by-set deduplication — as the executable
// specification the mask kernel must match. Labels here are table indices;
// each index owns an explicit parameter-name set.
type modelTable struct {
	sets   []map[string]bool // id -> parameter set (id 0 = empty)
	byName map[string]int
}

func newModelTable() *modelTable {
	return &modelTable{sets: []map[string]bool{{}}, byName: make(map[string]int)}
}

func (m *modelTable) base(name string) int {
	if id, ok := m.byName[name]; ok {
		return id
	}
	id := len(m.sets)
	m.sets = append(m.sets, map[string]bool{name: true})
	m.byName[name] = id
	return id
}

func (m *modelTable) union(a, b int) int {
	set := make(map[string]bool, len(m.sets[a])+len(m.sets[b]))
	for n := range m.sets[a] {
		set[n] = true
	}
	for n := range m.sets[b] {
		set[n] = true
	}
	// Dedup: reuse the id of an existing equivalent set.
	for id, s := range m.sets {
		if len(s) == len(set) {
			same := true
			for n := range set {
				if !s[n] {
					same = false
					break
				}
			}
			if same {
				return id
			}
		}
	}
	m.sets = append(m.sets, set)
	return len(m.sets) - 1
}

func (m *modelTable) expand(id int) []string {
	if len(m.sets[id]) == 0 {
		return nil
	}
	out := make([]string, 0, len(m.sets[id]))
	for n := range m.sets[id] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (m *modelTable) has(id, base int) bool {
	if len(m.sets[id]) == 0 {
		return false
	}
	for n := range m.sets[base] {
		if !m.sets[id][n] {
			return false
		}
	}
	return true
}

// TestMaskKernelMatchesTableAlgebra drives the mask kernel and the old-table
// model through the same random union/base programs and requires identical
// observable semantics: expansion sets, Has verdicts, and canonical equality
// (two labels are the same value iff the model says the sets are the same id).
func TestMaskKernelMatchesTableAlgebra(t *testing.T) {
	names := []string{"p", "size", "regions", "balance", "cost", "iters",
		"nx", "ny", "nz", "nt", "steps", "warms", "trajecs", "beta"}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed*2654435761 + 17))
		tb := NewTable()
		model := newModelTable()

		masks := []Label{None}
		ids := []int{0}
		for step := 0; step < 400; step++ {
			switch r.Intn(3) {
			case 0: // register / reuse a base
				n := names[r.Intn(len(names))]
				masks = append(masks, tb.Base(n))
				ids = append(ids, model.base(n))
			default: // union two existing labels
				i, j := r.Intn(len(masks)), r.Intn(len(masks))
				masks = append(masks, Union(masks[i], masks[j]))
				ids = append(ids, model.union(ids[i], ids[j]))
			}
			k := len(masks) - 1
			if got, want := tb.Expand(masks[k]), model.expand(ids[k]); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d: Expand = %v, model says %v", seed, step, got, want)
			}
		}
		// Canonical equality: mask equality must coincide with model set
		// identity, and Has must agree against every base label.
		for i := range masks {
			for j := range masks {
				if (masks[i] == masks[j]) != (ids[i] == ids[j]) {
					t.Fatalf("seed %d: labels %d,%d disagree on identity", seed, i, j)
				}
			}
			for _, n := range names {
				if bl := tb.LabelOf(n); bl != None {
					if masks[i].Has(bl) != model.has(ids[i], model.byName[n]) {
						t.Fatalf("seed %d: Has(%v, %s) diverges from model", seed, tb.Expand(masks[i]), n)
					}
				}
			}
		}
	}
}

// FuzzMaskAlgebra checks the union laws on arbitrary 64-bit masks — under
// the mask-native representation every uint64 is a well-formed label, so the
// laws must hold unconditionally, not just for table-built values.
func FuzzMaskAlgebra(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(4))
	f.Add(uint64(0xffffffffffffffff), uint64(1), uint64(0x8000000000000000))
	f.Add(uint64(0b1010), uint64(0b0110), uint64(0b0011))
	f.Fuzz(func(t *testing.T, x, y, z uint64) {
		a, b, c := Label(x), Label(y), Label(z)
		if Union(a, b) != Union(b, a) {
			t.Fatal("union not commutative")
		}
		if Union(Union(a, b), c) != Union(a, Union(b, c)) {
			t.Fatal("union not associative")
		}
		if Union(a, a) != a {
			t.Fatal("union not idempotent")
		}
		if Union(a, None) != a {
			t.Fatal("None not the identity")
		}
		u := Union(a, b)
		if a != None && !u.Has(a) {
			t.Fatal("union must contain its left operand")
		}
		if u != None && !u.Has(None) {
			t.Fatal("the empty set is a subset of any non-empty label")
		}
		if a != None && a.Has(b) && b.Has(a) && a != b {
			t.Fatal("mutual inclusion of non-empty labels implies equality")
		}
		// Subset characterization: Has(u, a) iff a|u == u, for non-empty u.
		if u != None && u.Has(c) != (c|u == u) {
			t.Fatal("Has disagrees with the mask subset characterization")
		}
	})
}
