// Package taint implements the dynamic taint machinery of Perf-Taint. A
// label IS the set of input parameters it denotes, carried as a uint64
// bitmask over base-parameter ordinals — the representation jump DFSan's
// "fast labels" made: no label table on the propagation path, no union
// tree, no memoization. Joining two labels is a single bitwise OR, executed
// inline by the interpreter (internal/interp) for every instruction of a
// tainted run. The Table that remains is a boundary concern: it registers
// parameter names at Prepare time (assigning each a bit) and expands masks
// back to sorted name lists when the census and FuncDeps are rendered.
package taint

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Label identifies a set of input parameters: bit i set means the label
// contains the base parameter with ordinal i. Label 0 is "untainted".
// Equal parameter sets are equal labels by construction — the canonical
// identity the old table-allocated representation had to maintain with a
// dedup map is now structural.
type Label uint64

// None is the empty (untainted) label.
const None Label = 0

// MaxBaseLabels bounds the number of distinct parameter names: one bit of
// the mask per parameter, which covers all realistic modeling setups (the
// paper's apps use at most nine parameters). Specs declaring more are
// rejected at core.Prepare time with a TooManyLabelsError.
const MaxBaseLabels = 64

// TooManyLabelsError reports an attempt to register more distinct taint
// parameters than the 64-bit mask representation can carry.
type TooManyLabelsError struct {
	// Declared is the number of distinct base labels requested.
	Declared int
}

// Error renders the violation with the declared count and the budget.
func (e *TooManyLabelsError) Error() string {
	return fmt.Sprintf("taint: %d distinct taint parameters exceed the %d-parameter mask budget (taint.MaxBaseLabels); drop parameters from the spec or split the analysis into separate parameter sets", e.Declared, MaxBaseLabels)
}

// Union joins two labels: the parameter set of the result is the union of
// the operand sets. This is the whole union algebra — commutative,
// associative, idempotent, with None as identity — and compiles to one OR
// instruction; the interpreter hot loops apply the operator directly.
func Union(a, b Label) Label { return a | b }

// Has reports whether label l includes base label base. It mirrors the old
// table semantics exactly: the empty label includes nothing.
func (l Label) Has(base Label) bool {
	if l == None {
		return false
	}
	return l&base == base
}

// Table maps parameter names to base labels and back. It is pure boundary
// machinery — registration when a run's sources are configured, expansion
// when reports are rendered — and never touched by label propagation.
type Table struct {
	names  []string         // ordinal -> base name
	byName map[string]Label // base name -> single-bit label
}

// NewTable returns an empty name registry.
func NewTable() *Table {
	return &Table{byName: make(map[string]Label)}
}

// Base returns the single-bit label for parameter name, allocating the next
// ordinal on first use. Specs are validated against MaxBaseLabels at
// core.Prepare time; exhausting the ordinal space here is a programming
// error, hence the panic.
func (t *Table) Base(name string) Label {
	if l, ok := t.byName[name]; ok {
		return l
	}
	ord := len(t.names)
	if ord >= MaxBaseLabels {
		panic((&TooManyLabelsError{Declared: ord + 1}).Error())
	}
	l := Label(1) << uint(ord)
	t.names = append(t.names, name)
	t.byName[name] = l
	return l
}

// TryBase is Base with the overflow reported as a TooManyLabelsError
// instead of a panic, for validation boundaries.
func (t *Table) TryBase(name string) (Label, error) {
	if _, ok := t.byName[name]; !ok && len(t.names) >= MaxBaseLabels {
		return None, &TooManyLabelsError{Declared: len(t.names) + 1}
	}
	return t.Base(name), nil
}

// NumBase returns the number of distinct base labels.
func (t *Table) NumBase() int { return len(t.byName) }

// Union joins two labels. Kept as a method for boundary call sites; the
// hot paths use the | operator directly.
func (t *Table) Union(a, b Label) Label { return a | b }

// Has reports whether label l includes base label base.
func (t *Table) Has(l, base Label) bool { return l.Has(base) }

// Mask returns l's raw bitmask over base ordinals — the label value itself
// under the mask-native representation.
func (t *Table) Mask(l Label) uint64 { return uint64(l) }

// Expand returns the sorted parameter names contained in l. Bits beyond the
// registered ordinals are ignored, so an over-approximated mask still
// renders only known parameters.
func (t *Table) Expand(l Label) []string {
	if l == None {
		return nil
	}
	mask := uint64(l)
	var out []string
	for mask != 0 {
		ord := bits.TrailingZeros64(mask)
		mask &= mask - 1
		if ord < len(t.names) {
			out = append(out, t.names[ord])
		}
	}
	sort.Strings(out)
	return out
}

// ExpandString renders l as a sorted comma-joined parameter list.
func (t *Table) ExpandString(l Label) string {
	return strings.Join(t.Expand(l), ",")
}

// LabelOf returns the label currently assigned to parameter name, or None.
func (t *Table) LabelOf(name string) Label {
	return t.byName[name]
}
