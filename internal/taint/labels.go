// Package taint implements the dynamic taint machinery of Perf-Taint: a
// DataFlowSanitizer-style label table (16-bit identifiers, union tree with
// deduplication), plus the recording side of the analysis — loop-exit sinks
// with call-path context, branch coverage, and iteration counts. The
// mechanical propagation of labels through instructions is performed by the
// interpreter (internal/interp), mirroring how DFSan's transformation pass
// instruments each instruction while its runtime manages labels.
package taint

import (
	"fmt"
	"sort"
	"strings"
)

// Label identifies a set of input parameters. Label 0 is "untainted".
// As in DataFlowSanitizer, identifiers are 16 bits wide, bounding a run at
// 65535 distinct labels.
type Label uint16

// None is the empty (untainted) label.
const None Label = 0

// MaxBaseLabels bounds the number of distinct parameter names; expansions
// are stored as 64-bit masks for O(1) union deduplication, which covers all
// realistic modeling setups (the paper's apps use at most nine parameters).
const MaxBaseLabels = 64

// Table allocates and joins labels. Each non-base label is the union of two
// existing labels, forming the tree-like structure described in Section 5.2;
// the table additionally verifies that operands do not represent an
// equivalent combination before allocating a new identifier.
type Table struct {
	names   []string         // base label names, index = base ordinal
	byName  map[string]Label // base name -> label id
	masks   []uint64         // label id -> expansion bitmask over base ordinals
	parents [][2]Label       // label id -> the two joined labels (0,0 for base)
	byMask  map[uint64]Label // expansion -> canonical label id
	baseOrd map[Label]int    // base label id -> ordinal
	// cache[a][b] (a < b) memoizes Union results as a dense, lazily grown
	// table (0 = not yet computed; a real union of distinct non-empty
	// labels is never None). Union is the single hottest operation of a
	// tainted run — every instruction joins its operand labels — and a
	// direct array probe beats hashing a map key by an order of magnitude.
	cache [][]Label
}

// NewTable returns an empty label table.
func NewTable() *Table {
	t := &Table{
		byName:  make(map[string]Label),
		byMask:  make(map[uint64]Label),
		baseOrd: make(map[Label]int),
	}
	// Reserve id 0 for the empty label.
	t.names = append(t.names, "")
	t.masks = append(t.masks, 0)
	t.parents = append(t.parents, [2]Label{})
	t.cache = append(t.cache, nil)
	t.byMask[0] = None
	return t
}

func (t *Table) alloc(name string, mask uint64, p0, p1 Label) Label {
	id := Label(len(t.masks))
	if int(id) != len(t.masks) {
		panic("taint: label identifier space (16 bit) exhausted")
	}
	t.names = append(t.names, name)
	t.masks = append(t.masks, mask)
	t.parents = append(t.parents, [2]Label{p0, p1})
	t.cache = append(t.cache, nil)
	return id
}

// Base returns the label for parameter name, allocating it on first use.
func (t *Table) Base(name string) Label {
	if l, ok := t.byName[name]; ok {
		return l
	}
	ord := len(t.byName)
	if ord >= MaxBaseLabels {
		panic(fmt.Sprintf("taint: more than %d base labels", MaxBaseLabels))
	}
	mask := uint64(1) << uint(ord)
	l := t.alloc(name, mask, 0, 0)
	t.byName[name] = l
	t.byMask[mask] = l
	t.baseOrd[l] = ord
	return l
}

// NumLabels returns the number of allocated labels including label 0.
func (t *Table) NumLabels() int { return len(t.masks) }

// NumBase returns the number of distinct base labels.
func (t *Table) NumBase() int { return len(t.byName) }

// Union joins two labels, reusing an existing identifier when the combined
// parameter set already has one (the deduplication step of Section 5.2).
func (t *Table) Union(a, b Label) Label {
	if a == b || b == None {
		return a
	}
	if a == None {
		return b
	}
	if a > b {
		a, b = b, a
	}
	row := t.cache[a]
	if int(b) < len(row) {
		if l := row[b]; l != None {
			return l
		}
	}
	mask := t.masks[a] | t.masks[b]
	l, ok := t.byMask[mask]
	if !ok {
		l = t.alloc("", mask, a, b)
		t.byMask[mask] = l
	}
	if int(b) >= len(row) {
		grown := make([]Label, int(b)+1)
		copy(grown, row)
		row = grown
		t.cache[a] = row
	}
	row[b] = l
	return l
}

// Has reports whether label l includes base label base.
func (t *Table) Has(l, base Label) bool {
	if l == None {
		return false
	}
	return t.masks[l]&t.masks[base] == t.masks[base]
}

// Mask returns the base-ordinal bitmask of l.
func (t *Table) Mask(l Label) uint64 { return t.masks[l] }

// Parents returns the two labels whose union produced l; base labels and
// label 0 return (0, 0).
func (t *Table) Parents(l Label) (Label, Label) {
	p := t.parents[l]
	return p[0], p[1]
}

// Expand returns the sorted parameter names contained in l.
func (t *Table) Expand(l Label) []string {
	if l == None {
		return nil
	}
	mask := t.masks[l]
	var out []string
	for name, bl := range t.byName {
		if mask&t.masks[bl] != 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ExpandString renders l as a sorted comma-joined parameter list.
func (t *Table) ExpandString(l Label) string {
	return strings.Join(t.Expand(l), ",")
}

// LabelOf returns the label currently assigned to parameter name, or None.
func (t *Table) LabelOf(name string) Label {
	return t.byName[name]
}
