package taint

import (
	"sort"
)

// LoopKey identifies one natural loop in one calling context.
type LoopKey struct {
	Func     string
	LoopID   int
	CallPath string
}

// LoopRecord accumulates sink observations for a loop: the union of labels
// seen on its exit-branch conditions and the dynamic iteration count.
type LoopRecord struct {
	Key        LoopKey
	Header     int
	Labels     Label
	Iterations int64
	// Entries counts how many times the loop was entered (trip starts).
	Entries int64
}

// BranchKey identifies one conditional branch site in one function.
type BranchKey struct {
	Func  string
	Block int
}

// BranchRecord tracks coverage and taint of a conditional branch, feeding
// the algorithm-selection and experiment-validation analyses (Sections 4.4
// and C2): branches whose condition is tainted and which take only one
// direction within a run indicate parameter-driven algorithm selection.
type BranchRecord struct {
	Key      BranchKey
	Labels   Label
	Taken    int64
	NotTaken int64
	// IsLoopExit marks branches that are natural-loop exits; those are
	// reported through LoopRecord instead of the algorithm-selection list.
	IsLoopExit bool
}

// LibCallKey identifies one library call site by calling context.
type LibCallKey struct {
	Caller   string
	Callee   string
	CallPath string
}

// LibCallRecord accumulates the parametric dependencies of a library call:
// the implicit parameters from the database plus the labels of the
// performance-relevant arguments (e.g. the count of an MPI send), per
// Section 5.3.
type LibCallRecord struct {
	Key    LibCallKey
	Labels Label
	Count  int64
}

// Engine owns the label table and all dynamic records of one tainted run.
type Engine struct {
	Table *Table

	// ControlFlow enables control-flow (explicit control dependence)
	// propagation; the paper's extension of DataFlowSanitizer (Section 5.2).
	ControlFlow bool

	Loops    map[LoopKey]*LoopRecord
	Branches map[BranchKey]*BranchRecord
	LibCalls map[LibCallKey]*LibCallRecord

	// RecursionWarnings lists functions detected on a recursive call chain
	// during execution; the analysis over-approximates there (Section 4.1).
	RecursionWarnings map[string]bool
}

// NewEngine returns an engine with control-flow propagation enabled, the
// configuration Perf-Taint requires to capture all dependencies.
func NewEngine() *Engine {
	return &Engine{
		Table:             NewTable(),
		ControlFlow:       true,
		Loops:             make(map[LoopKey]*LoopRecord),
		Branches:          make(map[BranchKey]*BranchRecord),
		LibCalls:          make(map[LibCallKey]*LibCallRecord),
		RecursionWarnings: make(map[string]bool),
	}
}

// CallerFromPath extracts the calling function from a call path ending in
// callee: the path component immediately before the final "/callee".
func CallerFromPath(callPath, callee string) string {
	caller := ""
	if i := len(callPath) - len(callee) - 1; i > 0 {
		head := callPath[:i]
		for j := len(head) - 1; j >= 0; j-- {
			if head[j] == '/' {
				caller = head[j+1:]
				break
			}
		}
		if caller == "" {
			caller = head
		}
	}
	return caller
}

// LibCallRec resolves (creating on first use) the record of the library call
// site identified by caller, callee, and call path. The fast interpreter
// resolves once per interned call path and then updates the record with
// plain field writes; the string-keyed map stays the source of truth so
// reporting is unchanged.
func (e *Engine) LibCallRec(caller, callee, callPath string) *LibCallRecord {
	k := LibCallKey{Caller: caller, Callee: callee, CallPath: callPath}
	r := e.LibCalls[k]
	if r == nil {
		r = &LibCallRecord{Key: k}
		e.LibCalls[k] = r
	}
	return r
}

// RecordLibCall notes an execution of the library function callee with the
// given dependency labels; callPath is the interpreter call path ending in
// callee.
func (e *Engine) RecordLibCall(callPath, callee string, labels Label) {
	r := e.LibCallRec(CallerFromPath(callPath, callee), callee, callPath)
	r.Labels |= labels
	r.Count++
}

// FuncLibDeps aggregates, per calling function, the union of parameter
// names its library calls depend on.
func (e *Engine) FuncLibDeps() map[string][]string {
	masks := make(map[string]Label)
	for k, r := range e.LibCalls {
		if k.Caller == "" {
			continue
		}
		masks[k.Caller] |= r.Labels
	}
	out := make(map[string][]string, len(masks))
	for fn, l := range masks {
		out[fn] = e.Table.Expand(l)
	}
	return out
}

// LoopRec resolves (creating on first use) the record of loop loopID of fn
// in calling context callPath. Records are created lazily — only loops that
// actually fire an event appear in Loops — so resolution order is identical
// between the reference and fast interpreters.
func (e *Engine) LoopRec(fn string, loopID, header int, callPath string) *LoopRecord {
	k := LoopKey{Func: fn, LoopID: loopID, CallPath: callPath}
	r := e.Loops[k]
	if r == nil {
		r = &LoopRecord{Key: k, Header: header}
		e.Loops[k] = r
	}
	return r
}

// RecordLoopExit is the taint sink for loop exit conditions (Section 4.1):
// it unions the condition label into the loop's record for the current call
// path.
func (e *Engine) RecordLoopExit(fn string, loopID, header int, callPath string, cond Label) {
	r := e.LoopRec(fn, loopID, header, callPath)
	r.Labels |= cond
}

// RecordIteration counts one executed back edge of the loop.
func (e *Engine) RecordIteration(fn string, loopID, header int, callPath string) {
	e.LoopRec(fn, loopID, header, callPath).Iterations++
}

// RecordEntry counts one loop entry (used to derive per-entry trip counts).
func (e *Engine) RecordEntry(fn string, loopID, header int, callPath string) {
	e.LoopRec(fn, loopID, header, callPath).Entries++
}

// BranchRec resolves (creating on first use) the record of the conditional
// branch terminating block of fn. Branch records are context-insensitive, so
// the fast interpreter caches the pointer per function per run.
func (e *Engine) BranchRec(fn string, block int) *BranchRecord {
	k := BranchKey{Func: fn, Block: block}
	r := e.Branches[k]
	if r == nil {
		r = &BranchRecord{Key: k}
		e.Branches[k] = r
	}
	return r
}

// RecordBranch tracks a conditional branch execution outside loop-exit
// position (or marks it as loop exit), with its condition label.
func (e *Engine) RecordBranch(fn string, block int, cond Label, taken, isLoopExit bool) {
	r := e.BranchRec(fn, block)
	r.Labels |= cond
	r.IsLoopExit = r.IsLoopExit || isLoopExit
	if taken {
		r.Taken++
	} else {
		r.NotTaken++
	}
}

// WarnRecursion records that fn participated in recursion at runtime.
func (e *Engine) WarnRecursion(fn string) { e.RecursionWarnings[fn] = true }

// FuncLoopDeps aggregates, per function, the union of parameter names that
// taint any of its loops (across all call paths).
func (e *Engine) FuncLoopDeps() map[string][]string {
	masks := make(map[string]Label)
	for k, r := range e.Loops {
		masks[k.Func] |= r.Labels
	}
	out := make(map[string][]string, len(masks))
	for fn, l := range masks {
		out[fn] = e.Table.Expand(l)
	}
	return out
}

// TaintedSelections returns branches with tainted conditions that are not
// loop exits and that executed only one direction — candidate
// parameter-based algorithm selections / unvisited code paths (Section 4.4).
func (e *Engine) TaintedSelections() []*BranchRecord {
	var out []*BranchRecord
	for _, r := range e.Branches {
		if r.IsLoopExit || r.Labels == None {
			continue
		}
		if r.Taken == 0 || r.NotTaken == 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Func != out[j].Key.Func {
			return out[i].Key.Func < out[j].Key.Func
		}
		return out[i].Key.Block < out[j].Key.Block
	})
	return out
}

// SortedLoops returns the loop records in deterministic order.
func (e *Engine) SortedLoops() []*LoopRecord {
	out := make([]*LoopRecord, 0, len(e.Loops))
	for _, r := range e.Loops {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.LoopID != b.LoopID {
			return a.LoopID < b.LoopID
		}
		return a.CallPath < b.CallPath
	})
	return out
}
