package taint

import (
	"testing"
	"testing/quick"
)

func TestBaseLabelsDistinctAndStable(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	size := tb.Base("size")
	if p == size {
		t.Fatal("distinct parameters share a label")
	}
	if tb.Base("p") != p {
		t.Fatal("Base not idempotent")
	}
	if tb.NumBase() != 2 {
		t.Fatalf("NumBase = %d, want 2", tb.NumBase())
	}
}

func TestUnionBasics(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	s := tb.Base("size")

	if got := tb.Union(p, None); got != p {
		t.Fatalf("Union(p, None) = %d, want %d", got, p)
	}
	if got := tb.Union(None, s); got != s {
		t.Fatalf("Union(None, s) = %d, want %d", got, s)
	}
	ps := tb.Union(p, s)
	if ps == p || ps == s || ps == None {
		t.Fatal("union of distinct labels must be a fresh label")
	}
	if !tb.Has(ps, p) || !tb.Has(ps, s) {
		t.Fatal("union must include both bases")
	}
}

func TestUnionDeduplicatesEquivalentCombinations(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	s := tb.Base("size")
	n := tb.Base("niter")

	a := tb.Union(tb.Union(p, s), n)
	bl := tb.Union(tb.Union(n, p), s)
	c := tb.Union(p, tb.Union(s, n))
	if a != bl || bl != c {
		t.Fatalf("equivalent combinations got distinct ids: %d %d %d", a, bl, c)
	}
	// Re-unioning must not allocate.
	before := tb.NumLabels()
	_ = tb.Union(a, s)
	if tb.NumLabels() != before {
		t.Fatal("Union(a, subset) allocated a new label")
	}
}

func TestExpandSortsNames(t *testing.T) {
	tb := NewTable()
	z := tb.Base("z")
	a := tb.Base("a")
	u := tb.Union(z, a)
	got := tb.Expand(u)
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("Expand = %v, want [a z]", got)
	}
	if s := tb.ExpandString(u); s != "a,z" {
		t.Fatalf("ExpandString = %q", s)
	}
	if tb.Expand(None) != nil {
		t.Fatal("Expand(None) should be nil")
	}
}

func TestParentsTreeStructure(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	s := tb.Base("size")
	u := tb.Union(p, s)
	a, b := tb.Parents(u)
	if a != p || b != s {
		t.Fatalf("Parents(u) = (%d,%d), want (%d,%d)", a, b, p, s)
	}
	if a, b := tb.Parents(p); a != 0 || b != 0 {
		t.Fatal("base label should have zero parents")
	}
}

func TestLabelOf(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	if tb.LabelOf("p") != p {
		t.Fatal("LabelOf(p) mismatch")
	}
	if tb.LabelOf("unknown") != None {
		t.Fatal("LabelOf(unknown) should be None")
	}
}

// Property: union is commutative, associative, and idempotent over a pool of
// base labels, with identical canonical identifiers for equal sets.
func TestUnionAlgebraProperties(t *testing.T) {
	tb := NewTable()
	names := []string{"p", "size", "nx", "ny", "nz", "nt", "steps", "niter"}
	base := make([]Label, len(names))
	for i, n := range names {
		base[i] = tb.Base(n)
	}
	pick := func(i uint8) Label { return base[int(i)%len(base)] }

	comm := func(i, j uint8) bool {
		return tb.Union(pick(i), pick(j)) == tb.Union(pick(j), pick(i))
	}
	assoc := func(i, j, k uint8) bool {
		l := tb.Union(tb.Union(pick(i), pick(j)), pick(k))
		r := tb.Union(pick(i), tb.Union(pick(j), pick(k)))
		return l == r
	}
	idem := func(i uint8) bool {
		return tb.Union(pick(i), pick(i)) == pick(i)
	}
	for name, prop := range map[string]interface{}{"comm": comm, "assoc": assoc, "idem": idem} {
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMaskSubsetProperty(t *testing.T) {
	tb := NewTable()
	a := tb.Base("a")
	b := tb.Base("b")
	c := tb.Base("c")
	u := tb.Union(a, tb.Union(b, c))
	for _, l := range []Label{a, b, c} {
		if tb.Mask(u)&tb.Mask(l) != tb.Mask(l) {
			t.Fatalf("mask of union missing base %d", l)
		}
	}
	if tb.Has(a, b) {
		t.Fatal("disjoint bases must not include each other")
	}
}
