package taint

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBaseLabelsDistinctAndStable(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	size := tb.Base("size")
	if p == size {
		t.Fatal("distinct parameters share a label")
	}
	if tb.Base("p") != p {
		t.Fatal("Base not idempotent")
	}
	if tb.NumBase() != 2 {
		t.Fatalf("NumBase = %d, want 2", tb.NumBase())
	}
	if p != 1 || size != 2 {
		t.Fatalf("base labels must be single bits in registration order, got %b %b", p, size)
	}
}

func TestUnionBasics(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	s := tb.Base("size")

	if got := Union(p, None); got != p {
		t.Fatalf("Union(p, None) = %d, want %d", got, p)
	}
	if got := Union(None, s); got != s {
		t.Fatalf("Union(None, s) = %d, want %d", got, s)
	}
	ps := Union(p, s)
	if ps == p || ps == s || ps == None {
		t.Fatal("union of distinct labels must be a fresh label")
	}
	if !ps.Has(p) || !ps.Has(s) {
		t.Fatal("union must include both bases")
	}
	if tb.Union(p, s) != ps {
		t.Fatal("Table.Union must agree with the package operator")
	}
}

// Equivalent combinations must be the same label value — under masks the
// canonical identity the old table enforced with a dedup map is structural.
func TestUnionCanonicalizesEquivalentCombinations(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	s := tb.Base("size")
	n := tb.Base("niter")

	a := Union(Union(p, s), n)
	bl := Union(Union(n, p), s)
	c := Union(p, Union(s, n))
	if a != bl || bl != c {
		t.Fatalf("equivalent combinations got distinct labels: %d %d %d", a, bl, c)
	}
	if Union(a, s) != a {
		t.Fatal("Union(a, subset) must be a no-op")
	}
}

func TestExpandSortsNames(t *testing.T) {
	tb := NewTable()
	z := tb.Base("z")
	a := tb.Base("a")
	u := Union(z, a)
	got := tb.Expand(u)
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("Expand = %v, want [a z]", got)
	}
	if s := tb.ExpandString(u); s != "a,z" {
		t.Fatalf("ExpandString = %q", s)
	}
	if tb.Expand(None) != nil {
		t.Fatal("Expand(None) should be nil")
	}
}

func TestLabelOf(t *testing.T) {
	tb := NewTable()
	p := tb.Base("p")
	if tb.LabelOf("p") != p {
		t.Fatal("LabelOf(p) mismatch")
	}
	if tb.LabelOf("unknown") != None {
		t.Fatal("LabelOf(unknown) should be None")
	}
}

func TestBaseLimit(t *testing.T) {
	tb := NewTable()
	for i := 0; i < MaxBaseLabels; i++ {
		tb.Base(string(rune('!' + i)))
	}
	if _, err := tb.TryBase("overflow"); err == nil {
		t.Fatal("TryBase beyond MaxBaseLabels must fail")
	} else {
		var tme *TooManyLabelsError
		if !errors.As(err, &tme) {
			t.Fatalf("want TooManyLabelsError, got %T: %v", err, err)
		}
		if tme.Declared != MaxBaseLabels+1 {
			t.Fatalf("Declared = %d, want %d", tme.Declared, MaxBaseLabels+1)
		}
	}
	// Registered names keep working at the limit.
	if _, err := tb.TryBase(string(rune('!'))); err != nil {
		t.Fatalf("TryBase of an existing name must not fail: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Base beyond MaxBaseLabels must panic")
		}
	}()
	tb.Base("overflow")
}

// Property: union is commutative, associative, and idempotent over a pool of
// base labels, with identical canonical values for equal sets.
func TestUnionAlgebraProperties(t *testing.T) {
	tb := NewTable()
	names := []string{"p", "size", "nx", "ny", "nz", "nt", "steps", "niter"}
	base := make([]Label, len(names))
	for i, n := range names {
		base[i] = tb.Base(n)
	}
	pick := func(i uint8) Label { return base[int(i)%len(base)] }

	comm := func(i, j uint8) bool {
		return Union(pick(i), pick(j)) == Union(pick(j), pick(i))
	}
	assoc := func(i, j, k uint8) bool {
		l := Union(Union(pick(i), pick(j)), pick(k))
		r := Union(pick(i), Union(pick(j), pick(k)))
		return l == r
	}
	idem := func(i uint8) bool {
		return Union(pick(i), pick(i)) == pick(i)
	}
	for name, prop := range map[string]interface{}{"comm": comm, "assoc": assoc, "idem": idem} {
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMaskSubsetProperty(t *testing.T) {
	tb := NewTable()
	a := tb.Base("a")
	b := tb.Base("b")
	c := tb.Base("c")
	u := Union(a, Union(b, c))
	for _, l := range []Label{a, b, c} {
		if tb.Mask(u)&tb.Mask(l) != tb.Mask(l) {
			t.Fatalf("mask of union missing base %d", l)
		}
	}
	if a.Has(b) {
		t.Fatal("disjoint bases must not include each other")
	}
	if None.Has(None) || u.Has(None) != true {
		// Has(l, None) is true for non-empty l (the empty set is a subset),
		// false for the empty label — the old table's exact contract.
		t.Fatal("Has(None) contract changed")
	}
}
