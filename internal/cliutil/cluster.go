// Package cliutil carries flag plumbing shared by the perftaint and
// perftaintd binaries. The cluster role flags live here so the
// one-binary `perftaint serve` mode and the daemon proper expose the
// exact same surface and can never drift apart.
package cliutil

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/service"
)

// ClusterFlags is the parsed cluster role and tuning flags. Zero values
// mean "leave the server default alone", so a daemon started without any
// cluster flags behaves exactly like one built before clustering existed.
type ClusterFlags struct {
	// Coordinator runs this daemon as the cluster coordinator.
	Coordinator *bool
	// Worker runs this daemon as a cluster worker; requires Join.
	Worker *bool
	// Join is the coordinator base URL a worker registers with.
	Join *string
	// Advertise is the base URL the coordinator dials this worker on.
	Advertise *string
	// ShardSize fixes design points per dispatched shard (0 = auto).
	ShardSize *int
	// ShardRetries bounds remote attempts per shard before local fallback.
	ShardRetries *int
	// ShardTimeout bounds one shard dispatch round-trip.
	ShardTimeout *time.Duration
	// HeartbeatInterval paces worker heartbeats and the liveness reaper.
	HeartbeatInterval *time.Duration
	// HeartbeatTimeout is how long a silent worker stays trusted.
	HeartbeatTimeout *time.Duration
}

// RegisterClusterFlags adds the cluster flags to fs. Call Apply after
// fs.Parse to validate the combination and fold it into service.Options.
func RegisterClusterFlags(fs *flag.FlagSet) *ClusterFlags {
	return &ClusterFlags{
		Coordinator: fs.Bool("coordinator", false,
			"run as the cluster coordinator: shard sweeps and model extractions across registered workers"),
		Worker: fs.Bool("worker", false,
			"run as a cluster worker (requires -join URL of the coordinator)"),
		Join: fs.String("join", "",
			"coordinator base URL to register with and heartbeat (implies -worker)"),
		Advertise: fs.String("advertise", "",
			"base URL the coordinator should dial this worker back on (empty derives it from the bound listen address)"),
		ShardSize: fs.Int("shard-size", 0,
			"design points per dispatched shard (0 = auto, about three shards per live worker)"),
		ShardRetries: fs.Int("shard-retries", 0,
			"remote dispatch attempts per shard before the coordinator runs it locally (0 = 3)"),
		ShardTimeout: fs.Duration("shard-timeout", 0,
			"deadline for one shard dispatch round-trip (0 = 2m)"),
		HeartbeatInterval: fs.Duration("heartbeat-interval", 0,
			"worker heartbeat and coordinator liveness-reaper period (0 = 1s)"),
		HeartbeatTimeout: fs.Duration("heartbeat-timeout", 0,
			"silence after which the coordinator benches a worker (0 = 4x heartbeat-interval)"),
	}
}

// Apply validates the parsed combination and writes it into opts.
// A daemon is standalone, a coordinator, or a worker — never two at once.
func (c *ClusterFlags) Apply(opts *service.Options) error {
	worker := *c.Worker || *c.Join != ""
	if *c.Coordinator && worker {
		return fmt.Errorf("-coordinator and -worker/-join are mutually exclusive: a daemon has one cluster role")
	}
	if *c.Worker && *c.Join == "" {
		return fmt.Errorf("-worker requires -join URL (the coordinator to register with)")
	}
	if *c.Advertise != "" && !worker {
		return fmt.Errorf("-advertise only applies to workers (add -join URL)")
	}
	opts.Coordinator = *c.Coordinator
	opts.JoinURL = *c.Join
	opts.AdvertiseURL = *c.Advertise
	opts.ShardSize = *c.ShardSize
	opts.ShardRetries = *c.ShardRetries
	opts.ShardTimeout = *c.ShardTimeout
	opts.HeartbeatInterval = *c.HeartbeatInterval
	opts.HeartbeatTimeout = *c.HeartbeatTimeout
	return nil
}
