package cliutil

import (
	"flag"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// parse runs the cluster flags over args and applies them to opts.
func parse(t *testing.T, args ...string) (service.Options, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterClusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	var opts service.Options
	err := c.Apply(&opts)
	return opts, err
}

func TestClusterFlagsRoles(t *testing.T) {
	if opts, err := parse(t, "-coordinator"); err != nil || !opts.Coordinator {
		t.Fatalf("coordinator: opts=%+v err=%v", opts, err)
	}
	if opts, err := parse(t, "-worker", "-join", "http://c:7070"); err != nil || opts.JoinURL != "http://c:7070" {
		t.Fatalf("worker: opts=%+v err=%v", opts, err)
	}
	// -join alone implies -worker.
	if opts, err := parse(t, "-join", "http://c:7070"); err != nil || opts.JoinURL != "http://c:7070" {
		t.Fatalf("bare -join: opts=%+v err=%v", opts, err)
	}
	if opts, err := parse(t); err != nil || !reflect.DeepEqual(opts, service.Options{}) {
		t.Fatalf("no flags must leave Options zero: opts=%+v err=%v", opts, err)
	}
}

func TestClusterFlagsRejectsBadCombinations(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-coordinator", "-worker", "-join", "http://c"}, "mutually exclusive"},
		{[]string{"-coordinator", "-join", "http://c"}, "mutually exclusive"},
		{[]string{"-worker"}, "requires -join"},
		{[]string{"-advertise", "http://w"}, "only applies to workers"},
		{[]string{"-coordinator", "-advertise", "http://w"}, "only applies to workers"},
	} {
		if _, err := parse(t, tc.args...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: err = %v, want substring %q", tc.args, err, tc.want)
		}
	}
}

func TestClusterFlagsTuning(t *testing.T) {
	opts, err := parse(t, "-coordinator",
		"-shard-size", "4", "-shard-retries", "5", "-shard-timeout", "30s",
		"-heartbeat-interval", "2s", "-heartbeat-timeout", "9s")
	if err != nil {
		t.Fatal(err)
	}
	if opts.ShardSize != 4 || opts.ShardRetries != 5 || opts.ShardTimeout != 30*time.Second ||
		opts.HeartbeatInterval != 2*time.Second || opts.HeartbeatTimeout != 9*time.Second {
		t.Fatalf("tuning flags did not land in Options: %+v", opts)
	}
}
