// Package par provides the index-ordered worker pool shared by the batch
// runner and the model fitter. It is a dependency leaf: internal/extrap
// cannot import internal/runner (the core pipeline sits between them), so
// both take the pool from here.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs n index jobs on at most workers goroutines (workers <= 0
// means GOMAXPROCS) and returns when all have finished. Jobs are handed
// out in index order; callers that write job i's outcome to slot i of a
// preallocated slice get deterministic, input-ordered results for free.
func ForEach(workers, n int, job func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
