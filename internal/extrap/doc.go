// Package extrap reimplements the Extra-P empirical performance modeler
// used as the black-box half of Perf-Taint: the performance model normal
// form (PMNF, Equation 1), its default search space, least-squares
// hypothesis fitting, the single-parameter model search, and the
// multi-parameter heuristic that combines the best single-parameter models
// (Calotoiu et al.). Model selection uses leave-one-out cross-validation of
// the symmetric mean absolute percentage error, which penalizes the
// overfitting the paper's Section 4.5 discusses.
//
// The white-box integration point is Prior: the taint analysis restricts
// which parameters may appear in a model at all (and which may couple
// multiplicatively), turning the black-box search into the paper's hybrid
// modeler. Batch fitting fans out through FitAll, whose per-request
// failures surface as typed *FitError values.
package extrap
