package extrap

import (
	"errors"
	"math"
)

// errSingular reports an unsolvable (rank-deficient) least-squares system;
// the corresponding hypothesis is discarded.
var errSingular = errors.New("extrap: singular normal equations")

// lstsq solves min ||A c - y||^2 for c via the normal equations
// (A^T A) c = A^T y with Gaussian elimination and partial pivoting.
// A is row-major with rows = len(y), cols = k.
func lstsq(a [][]float64, y []float64) ([]float64, error) {
	rows := len(a)
	if rows == 0 {
		return nil, errSingular
	}
	k := len(a[0])
	if rows < k {
		return nil, errSingular
	}
	// Normal matrix N = A^T A (k x k), rhs = A^T y.
	n := make([][]float64, k)
	for i := range n {
		n[i] = make([]float64, k+1)
	}
	for r := 0; r < rows; r++ {
		row := a[r]
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				n[i][j] += row[i] * row[j]
			}
			n[i][k] += row[i] * y[r]
		}
	}
	// Gaussian elimination with partial pivoting on the augmented matrix.
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(n[r][col]) > math.Abs(n[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(n[pivot][col]) < 1e-12 {
			return nil, errSingular
		}
		n[col], n[pivot] = n[pivot], n[col]
		inv := 1 / n[col][col]
		for j := col; j <= k; j++ {
			n[col][j] *= inv
		}
		for r := 0; r < k; r++ {
			if r == col || n[r][col] == 0 {
				continue
			}
			f := n[r][col]
			for j := col; j <= k; j++ {
				n[r][j] -= f * n[col][j]
			}
		}
	}
	c := make([]float64, k)
	for i := range c {
		c[i] = n[i][k]
		if math.IsNaN(c[i]) || math.IsInf(c[i], 0) {
			return nil, errSingular
		}
	}
	return c, nil
}

// designMatrix builds the regression matrix for a hypothesis: column 0 is
// the constant 1, column t+1 is the shape value of term t at each point.
func designMatrix(d *Dataset, shapes []Term) [][]float64 {
	a := make([][]float64, len(d.Points))
	for r, p := range d.Points {
		row := make([]float64, len(shapes)+1)
		row[0] = 1
		for t, term := range shapes {
			row[t+1] = term.evalShape(p.Params)
		}
		a[r] = row
	}
	return a
}

// fitHypothesis fits constant + coefficients for the given term shapes and
// returns the resulting model with training RSS/SMAPE filled in.
func fitHypothesis(d *Dataset, shapes []Term) (*Model, error) {
	y := d.values()
	a := designMatrix(d, shapes)
	c, err := lstsq(a, y)
	if err != nil {
		return nil, err
	}
	m := &Model{Constant: c[0]}
	for t, term := range shapes {
		fitted := term
		fitted.Coeff = c[t+1]
		m.Terms = append(m.Terms, fitted)
	}
	pred := make([]float64, len(d.Points))
	rss := 0.0
	for i, p := range d.Points {
		pred[i] = m.Eval(p.Params)
		dlt := pred[i] - y[i]
		rss += dlt * dlt
	}
	m.RSS = rss
	m.SMAPE = smape(pred, y)
	return m, nil
}

// crossValidate computes the leave-one-out SMAPE of a hypothesis: for each
// point, refit on the remainder and predict the left-out value. Hypotheses
// that become singular under any fold are penalized with +Inf.
func crossValidate(d *Dataset, shapes []Term) float64 {
	nPts := len(d.Points)
	if nPts < len(shapes)+2 {
		return math.Inf(1)
	}
	preds := make([]float64, 0, nPts)
	actuals := make([]float64, 0, nPts)
	for leave := 0; leave < nPts; leave++ {
		sub := &Dataset{ParamNames: d.ParamNames}
		sub.Points = make([]Point, 0, nPts-1)
		sub.Points = append(sub.Points, d.Points[:leave]...)
		sub.Points = append(sub.Points, d.Points[leave+1:]...)
		m, err := fitHypothesis(sub, shapes)
		if err != nil {
			return math.Inf(1)
		}
		preds = append(preds, m.Eval(d.Points[leave].Params))
		actuals = append(actuals, d.Points[leave].Mean())
	}
	return smape(preds, actuals)
}
