package extrap

import (
	"fmt"
	"math"
	"sort"
)

// Selection chooses how competing hypotheses are ranked.
type Selection int

// Selection policies. SelectTraining mirrors classic Extra-P behaviour of
// minimizing the fit error on the training data — fast, but prone to the
// overfitting on noisy constants the paper highlights. SelectCV ranks by
// leave-one-out cross-validation, which is more robust but cannot replace
// the structural prior (noise can still masquerade as parameter effects).
const (
	SelectTraining Selection = iota
	SelectCV
)

// Options configures the model search.
type Options struct {
	Space Space
	// Selection policy; defaults to SelectTraining (Extra-P's behaviour).
	Selection Selection
	// MinImprovement is the relative score improvement a more complex
	// hypothesis must deliver over a simpler one to be accepted.
	MinImprovement float64
	// CandidateTerms bounds how many best single-term hypotheses seed the
	// two-term search (Extra-P's search-space reduction heuristic).
	CandidateTerms int
}

// DefaultOptions returns the configuration used across the evaluation.
func DefaultOptions() Options {
	return Options{
		Space:          DefaultSpace(),
		Selection:      SelectTraining,
		MinImprovement: 0.01,
		CandidateTerms: 12,
	}
}

func (o Options) score(d *Dataset, shapes []Term, m *Model) float64 {
	if o.Selection == SelectCV {
		return crossValidate(d, shapes)
	}
	return m.SMAPE
}

// scored pairs a fitted hypothesis with its selection score.
type scored struct {
	model  *Model
	shapes []Term
	score  float64
}

// ModelSingle fits the best PMNF model in one parameter. The search follows
// Extra-P: fit the constant hypothesis, then every one-term hypothesis,
// then two-term combinations seeded by the best one-term candidates, and
// keep additional complexity only when it buys at least MinImprovement.
func ModelSingle(d *Dataset, param string, opt Options) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opt.Space.MaxTerms == 0 {
		opt = DefaultOptions()
	}

	constModel, err := fitHypothesis(d, nil)
	if err != nil {
		return nil, fmt.Errorf("extrap: constant fit failed: %w", err)
	}
	constScore := opt.score(d, nil, constModel)
	constModel.CV = crossValidate(d, nil)

	best := scored{model: constModel, score: constScore}

	var oneTerm []scored
	for _, pl := range opt.Space.Shapes() {
		shapes := []Term{{Factors: map[string]PowLog{param: pl}}}
		m, err := fitHypothesis(d, shapes)
		if err != nil {
			continue
		}
		oneTerm = append(oneTerm, scored{model: m, shapes: shapes, score: opt.score(d, shapes, m)})
	}
	sort.Slice(oneTerm, func(i, j int) bool { return oneTerm[i].score < oneTerm[j].score })

	if len(oneTerm) > 0 && improves(oneTerm[0].score, best.score, opt.MinImprovement) {
		best = oneTerm[0]
	}

	if opt.Space.MaxTerms >= 2 {
		k := opt.CandidateTerms
		if k <= 0 {
			k = 3
		}
		if k > len(oneTerm) {
			k = len(oneTerm)
		}
		var bestTwo scored
		bestTwo.score = math.Inf(1)
		for ci := 0; ci < k; ci++ {
			first := oneTerm[ci].shapes[0]
			for _, pl := range opt.Space.Shapes() {
				if pl == first.Factors[param] {
					continue
				}
				shapes := []Term{first, {Factors: map[string]PowLog{param: pl}}}
				m, err := fitHypothesis(d, shapes)
				if err != nil {
					continue
				}
				s := opt.score(d, shapes, m)
				if s < bestTwo.score {
					bestTwo = scored{model: m, shapes: shapes, score: s}
				}
			}
		}
		if bestTwo.model != nil && improves(bestTwo.score, best.score, opt.MinImprovement) {
			best = bestTwo
		}
	}

	best.model.CV = crossValidate(d, best.shapes)
	return best.model, nil
}

// improves reports whether candidate beats incumbent by the relative margin.
func improves(candidate, incumbent, margin float64) bool {
	if math.IsInf(candidate, 1) {
		return false
	}
	if incumbent == 0 {
		return false
	}
	return candidate < incumbent*(1-margin)
}
