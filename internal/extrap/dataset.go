package extrap

import (
	"fmt"
	"math"
	"sort"
)

// Point is one measured configuration: parameter values and the repeated
// measurements of the metric (execution time, visits, ...).
type Point struct {
	Params map[string]float64
	Values []float64
}

// Mean returns the average of the repeats.
func (p Point) Mean() float64 {
	if len(p.Values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range p.Values {
		s += v
	}
	return s / float64(len(p.Values))
}

// CoV returns the coefficient of variation of the repeats (stddev/mean);
// zero-mean points return +Inf so they fail any noise filter.
func (p Point) CoV() float64 {
	m := p.Mean()
	if len(p.Values) < 2 {
		return 0
	}
	if m == 0 {
		return math.Inf(1)
	}
	ss := 0.0
	for _, v := range p.Values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(p.Values)-1)) / math.Abs(m)
}

// Dataset is a set of measurement points over named parameters.
type Dataset struct {
	ParamNames []string
	Points     []Point
}

// NewDataset declares the parameter names of a measurement set.
func NewDataset(params ...string) *Dataset {
	ps := append([]string(nil), params...)
	sort.Strings(ps)
	return &Dataset{ParamNames: ps}
}

// Add appends one configuration with its repeated measurements.
func (d *Dataset) Add(params map[string]float64, values ...float64) {
	cp := make(map[string]float64, len(params))
	for k, v := range params {
		cp[k] = v
	}
	d.Points = append(d.Points, Point{Params: cp, Values: append([]float64(nil), values...)})
}

// MaxCoV returns the largest coefficient of variation across points; the
// paper excludes functions whose data exceeds 0.1 as too noisy (B1).
func (d *Dataset) MaxCoV() float64 {
	worst := 0.0
	for _, p := range d.Points {
		if c := p.CoV(); c > worst {
			worst = c
		}
	}
	return worst
}

// NoiseCutoff is the coefficient-of-variation threshold above which the
// paper considers measurements unreliable.
const NoiseCutoff = 0.1

// Reliable reports whether all points pass the CoV filter.
func (d *Dataset) Reliable() bool { return d.MaxCoV() <= NoiseCutoff }

// Validate checks that every point provides every declared parameter and
// that no measurement or parameter value is NaN or infinite — a single
// non-finite value would silently poison every normal-equation solve.
func (d *Dataset) Validate() error {
	if len(d.Points) == 0 {
		return fmt.Errorf("extrap: empty dataset")
	}
	for i, p := range d.Points {
		if len(p.Values) == 0 {
			return fmt.Errorf("extrap: point %d has no measurements", i)
		}
		for _, v := range p.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("extrap: point %d has non-finite measurement %v", i, v)
			}
		}
		for _, name := range d.ParamNames {
			v, ok := p.Params[name]
			if !ok {
				return fmt.Errorf("extrap: point %d missing parameter %q", i, name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("extrap: point %d has non-finite value %v for parameter %q", i, v, name)
			}
		}
	}
	return nil
}

// values returns the per-point mean metric values.
func (d *Dataset) values() []float64 {
	out := make([]float64, len(d.Points))
	for i, p := range d.Points {
		out[i] = p.Mean()
	}
	return out
}

// distinct returns the sorted distinct values of parameter name.
func (d *Dataset) distinct(name string) []float64 {
	set := make(map[float64]bool)
	for _, p := range d.Points {
		set[p.Params[name]] = true
	}
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// sliceFor extracts the single-parameter sweep of target: points where all
// other parameters sit at their minimum value. This is the line of the
// experiment design Extra-P's first heuristic models in isolation.
func (d *Dataset) sliceFor(target string) *Dataset {
	mins := make(map[string]float64)
	for _, name := range d.ParamNames {
		if name == target {
			continue
		}
		vals := d.distinct(name)
		if len(vals) > 0 {
			mins[name] = vals[0]
		}
	}
	out := NewDataset(target)
	for _, p := range d.Points {
		match := true
		for name, want := range mins {
			if p.Params[name] != want {
				match = false
				break
			}
		}
		if match {
			out.Add(map[string]float64{target: p.Params[target]}, p.Values...)
		}
	}
	return out
}

// smape computes the symmetric mean absolute percentage error between
// predictions and actual values in [0, 2].
func smape(pred, actual []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		den := math.Abs(pred[i]) + math.Abs(actual[i])
		if den == 0 {
			continue
		}
		s += 2 * math.Abs(pred[i]-actual[i]) / den
	}
	return s / float64(len(pred))
}
