package extrap

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PowLog is one PMNF factor x^I * log2(x)^J for a single parameter.
type PowLog struct {
	I float64
	J float64
}

// IsUnit reports the trivial factor x^0*log^0 == 1.
func (pl PowLog) IsUnit() bool { return pl.I == 0 && pl.J == 0 }

// Eval computes x^I * log2(x)^J; x < 1 is clamped to 1 so logs stay finite
// on degenerate configurations.
func (pl PowLog) Eval(x float64) float64 {
	if x < 1 {
		x = 1
	}
	v := math.Pow(x, pl.I)
	if pl.J != 0 {
		v *= math.Pow(math.Log2(x), pl.J)
	}
	return v
}

// String renders the factor for a named parameter.
func (pl PowLog) String(param string) string {
	var parts []string
	if pl.I != 0 {
		if pl.I == 1 {
			parts = append(parts, param)
		} else {
			parts = append(parts, fmt.Sprintf("%s^%.4g", param, pl.I))
		}
	}
	if pl.J != 0 {
		if pl.J == 1 {
			parts = append(parts, fmt.Sprintf("log2(%s)", param))
		} else {
			parts = append(parts, fmt.Sprintf("log2(%s)^%.4g", param, pl.J))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "*")
}

// Term is one PMNF summand: Coeff * prod_l x_l^{i_l} log^{j_l}(x_l).
type Term struct {
	Coeff   float64
	Factors map[string]PowLog
}

// evalShape computes the term value without the coefficient. Factors
// multiply in sorted parameter order: float rounding is order-sensitive,
// and everything downstream of a fit — model selection, cross-validation,
// the content-addressed ModelSet bytes — must not depend on map iteration
// order.
func (t Term) evalShape(params map[string]float64) float64 {
	if len(t.Factors) == 1 {
		for name, pl := range t.Factors {
			return pl.Eval(paramOr1(params, name))
		}
	}
	names := make([]string, 0, len(t.Factors))
	for name := range t.Factors {
		names = append(names, name)
	}
	sort.Strings(names)
	v := 1.0
	for _, name := range names {
		v *= t.Factors[name].Eval(paramOr1(params, name))
	}
	return v
}

// paramOr1 looks up a configuration value; a parameter absent from the
// configuration contributes its clamped unit value (callers should not
// let this happen).
func paramOr1(params map[string]float64, name string) float64 {
	if x, ok := params[name]; ok {
		return x
	}
	return 1
}

// Params returns the parameter names used by the term, sorted.
func (t Term) Params() []string {
	out := make([]string, 0, len(t.Factors))
	for n, pl := range t.Factors {
		if !pl.IsUnit() {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the term.
func (t Term) String() string {
	names := make([]string, 0, len(t.Factors))
	for n := range t.Factors {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		if !t.Factors[n].IsUnit() {
			parts = append(parts, t.Factors[n].String(n))
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("%.4g", t.Coeff)
	}
	return fmt.Sprintf("%.4g*%s", t.Coeff, strings.Join(parts, "*"))
}

// Model is a fitted PMNF instance: Constant + sum of Terms.
type Model struct {
	Constant float64
	Terms    []Term

	// Fit quality on the training data.
	RSS   float64
	SMAPE float64
	// CV is the leave-one-out cross-validated SMAPE used for selection.
	CV float64
}

// Eval computes the model prediction for one configuration.
func (m *Model) Eval(params map[string]float64) float64 {
	v := m.Constant
	for _, t := range m.Terms {
		v += t.Coeff * t.evalShape(params)
	}
	return v
}

// IsConstant reports whether the model has no parameter-dependent terms.
func (m *Model) IsConstant() bool {
	for _, t := range m.Terms {
		if len(t.Params()) > 0 {
			return false
		}
	}
	return true
}

// Params returns the sorted set of parameters used by the model.
func (m *Model) Params() []string {
	set := make(map[string]bool)
	for _, t := range m.Terms {
		for _, p := range t.Params() {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// DependsOn reports whether the model uses parameter name.
func (m *Model) DependsOn(name string) bool {
	for _, p := range m.Params() {
		if p == name {
			return true
		}
	}
	return false
}

// String renders the model in the paper's notation, e.g.
// "2.4e-08*p^0.25*size^3 + 127".
func (m *Model) String() string {
	var parts []string
	for _, t := range m.Terms {
		parts = append(parts, t.String())
	}
	if m.Constant != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%.4g", m.Constant))
	}
	return strings.Join(parts, " + ")
}

// Multiplicative reports whether any term couples two or more parameters
// (the B2 additive-vs-multiplicative distinction).
func (m *Model) Multiplicative() bool {
	for _, t := range m.Terms {
		if len(t.Params()) >= 2 {
			return true
		}
	}
	return false
}

// Space is the PMNF hypothesis search space.
type Space struct {
	// I is the set of rational polynomial exponents.
	I []float64
	// J is the set of logarithm exponents.
	J []float64
	// MaxTerms is n in Equation 1.
	MaxTerms int
}

// DefaultSpace returns the configuration suggested by Ritter et al. and
// quoted in the paper: n = 2, I = {0/4 .. 12/4 including thirds},
// J = {0, 1, 2}.
func DefaultSpace() Space {
	return Space{
		I: []float64{
			0, 1.0 / 4, 1.0 / 3, 2.0 / 4, 2.0 / 3, 3.0 / 4, 1,
			5.0 / 4, 4.0 / 3, 6.0 / 4, 5.0 / 3, 7.0 / 4, 2,
			9.0 / 4, 10.0 / 4, 8.0 / 3, 11.0 / 4, 3,
		},
		J:        []float64{0, 1, 2},
		MaxTerms: 2,
	}
}

// Shapes enumerates all non-unit PowLog factors of the space.
func (s Space) Shapes() []PowLog {
	var out []PowLog
	for _, i := range s.I {
		for _, j := range s.J {
			pl := PowLog{I: i, J: j}
			if pl.IsUnit() {
				continue
			}
			out = append(out, pl)
		}
	}
	return out
}

// HypothesisCount is the size of the single-parameter model search for
// reporting purposes (the paper's 10^14 explosion discussion).
func (s Space) HypothesisCount() int {
	n := len(s.Shapes())
	total := 0
	comb := 1
	for k := 1; k <= s.MaxTerms; k++ {
		comb = comb * (n - k + 1) / k
		total += comb
	}
	return total
}
