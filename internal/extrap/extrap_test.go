package extrap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPowLogEval(t *testing.T) {
	cases := []struct {
		pl   PowLog
		x    float64
		want float64
	}{
		{PowLog{I: 1, J: 0}, 8, 8},
		{PowLog{I: 2, J: 0}, 3, 9},
		{PowLog{I: 0, J: 1}, 8, 3},
		{PowLog{I: 1, J: 1}, 4, 8},
		{PowLog{I: 0.5, J: 0}, 16, 4},
		{PowLog{I: 0, J: 0}, 99, 1},
		{PowLog{I: 2, J: 0}, 0.5, 1}, // clamped below 1
	}
	for _, tc := range cases {
		if got := tc.pl.Eval(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%+v.Eval(%g) = %g, want %g", tc.pl, tc.x, got, tc.want)
		}
	}
}

func TestDefaultSpaceMatchesPaper(t *testing.T) {
	s := DefaultSpace()
	if s.MaxTerms != 2 {
		t.Fatalf("MaxTerms = %d, want 2", s.MaxTerms)
	}
	if len(s.J) != 3 {
		t.Fatalf("J = %v, want {0,1,2}", s.J)
	}
	// I must include 0, 1/4 ... 3 (the paper's 18-element set).
	if len(s.I) != 18 {
		t.Fatalf("len(I) = %d, want 18", len(s.I))
	}
	if s.HypothesisCount() <= 0 {
		t.Fatal("hypothesis count must be positive")
	}
}

func TestDatasetCoVAndReliability(t *testing.T) {
	d := NewDataset("p")
	d.Add(map[string]float64{"p": 2}, 10, 10.2, 9.8)
	d.Add(map[string]float64{"p": 4}, 20, 20.1, 19.9)
	if !d.Reliable() {
		t.Fatalf("low-noise data flagged unreliable (MaxCoV=%g)", d.MaxCoV())
	}
	d.Add(map[string]float64{"p": 8}, 10, 30) // wild repeat
	if d.Reliable() {
		t.Fatal("noisy data passed the CoV filter")
	}
}

func TestDatasetValidate(t *testing.T) {
	d := NewDataset("p", "s")
	if err := d.Validate(); err == nil {
		t.Fatal("empty dataset must fail validation")
	}
	d.Add(map[string]float64{"p": 1}, 1) // missing s
	if err := d.Validate(); err == nil {
		t.Fatal("missing parameter must fail validation")
	}
}

func TestLstsqExactLine(t *testing.T) {
	// y = 3 + 2x.
	a := [][]float64{{1, 1}, {1, 2}, {1, 3}, {1, 4}}
	y := []float64{5, 7, 9, 11}
	c, err := lstsq(a, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-3) > 1e-9 || math.Abs(c[1]-2) > 1e-9 {
		t.Fatalf("coeffs = %v, want [3 2]", c)
	}
}

func TestLstsqSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, err := lstsq(a, y); err == nil {
		t.Fatal("collinear design must be singular")
	}
	if _, err := lstsq(nil, nil); err == nil {
		t.Fatal("empty system must error")
	}
}

func synthSingle(f func(x float64) float64, xs []float64) *Dataset {
	d := NewDataset("x")
	for _, x := range xs {
		d.Add(map[string]float64{"x": x}, f(x))
	}
	return d
}

var sweep = []float64{4, 8, 16, 32, 64, 128}

func TestModelSingleRecoversLinear(t *testing.T) {
	d := synthSingle(func(x float64) float64 { return 5 + 2*x }, sweep)
	m, err := ModelSingle(d, "x", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{10, 100, 256} {
		want := 5 + 2*x
		got := m.Eval(map[string]float64{"x": x})
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("linear recovery at %g: got %g want %g (model %s)", x, got, want, m)
		}
	}
	if m.IsConstant() {
		t.Fatal("linear data fitted constant")
	}
}

func TestModelSingleRecoversCubic(t *testing.T) {
	d := synthSingle(func(x float64) float64 { return 1e-5 * x * x * x }, []float64{25, 30, 35, 40, 45})
	m, err := ModelSingle(d, "x", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Eval(map[string]float64{"x": 50})
	want := 1e-5 * 50 * 50 * 50
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("cubic extrapolation: got %g want %g (model %s)", got, want, m)
	}
}

func TestModelSingleRecoversLogShape(t *testing.T) {
	d := synthSingle(func(x float64) float64 { return 10 + 4*math.Log2(x) }, sweep)
	m, err := ModelSingle(d, "x", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Eval(map[string]float64{"x": 1024})
	want := 10 + 4*10.0
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("log extrapolation: got %g want %g (model %s)", got, want, m)
	}
}

func TestModelSingleConstantStaysConstant(t *testing.T) {
	d := synthSingle(func(x float64) float64 { return 7 }, sweep)
	m, err := ModelSingle(d, "x", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsConstant() {
		t.Fatalf("noise-free constant fitted %s", m)
	}
	if math.Abs(m.Constant-7) > 1e-9 {
		t.Fatalf("constant = %g, want 7", m.Constant)
	}
}

func TestModelSingleOverfitsNoisyConstantWithTrainingSelection(t *testing.T) {
	// This reproduces the failure mode of black-box modeling the paper
	// attacks: a constant function plus noise is frequently assigned a
	// parametric model when ranking by training error.
	rng := rand.New(rand.NewSource(7))
	overfits := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		d := NewDataset("x")
		for _, x := range sweep {
			var reps []float64
			for r := 0; r < 5; r++ {
				reps = append(reps, 100*(1+0.05*rng.NormFloat64()))
			}
			d.Add(map[string]float64{"x": x}, reps...)
		}
		m, err := ModelSingle(d, "x", DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !m.IsConstant() {
			overfits++
		}
	}
	if overfits == 0 {
		t.Fatal("training-error selection never overfitted noisy constants; the B1 experiment premise would not hold")
	}
}

func TestTwoTermModelRecovery(t *testing.T) {
	// f = 3x + 100 log2(x): needs both terms.
	d := synthSingle(func(x float64) float64 { return 3*x + 100*math.Log2(x) }, sweep)
	m, err := ModelSingle(d, "x", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Eval(map[string]float64{"x": 512})
	want := 3*512 + 100*9.0
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("two-term extrapolation: got %g want %g (model %s)", got, want, m)
	}
}

func synthMulti(f func(p, s float64) float64, ps, ss []float64, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset("p", "s")
	for _, p := range ps {
		for _, s := range ss {
			var reps []float64
			for r := 0; r < 5; r++ {
				reps = append(reps, f(p, s)*(1+noise*rng.NormFloat64()))
			}
			d.Add(map[string]float64{"p": p, "s": s}, reps...)
		}
	}
	return d
}

var (
	pVals = []float64{4, 8, 16, 32, 64}
	sVals = []float64{32, 64, 128, 256, 512}
)

func TestModelMultiRecoversMultiplicative(t *testing.T) {
	d := synthMulti(func(p, s float64) float64 { return 1e-4 * p * s }, pVals, sVals, 0, 1)
	m, err := ModelMulti(d, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Multiplicative() {
		t.Fatalf("p*s data fitted non-multiplicative model %s", m)
	}
	got := m.Eval(map[string]float64{"p": 128, "s": 1024})
	want := 1e-4 * 128 * 1024
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("multiplicative extrapolation: got %g want %g", got, want)
	}
}

func TestModelMultiRecoversAdditive(t *testing.T) {
	d := synthMulti(func(p, s float64) float64 { return 2*p + 3*s }, pVals, sVals, 0, 2)
	m, err := ModelMulti(d, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Eval(map[string]float64{"p": 128, "s": 1024})
	want := 2*128 + 3*1024.0
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("additive extrapolation: got %g want %g (model %s)", got, want, m)
	}
}

func TestPriorForceConstant(t *testing.T) {
	d := synthMulti(func(p, s float64) float64 { return 100 }, pVals, sVals, 0.08, 3)
	prior := &Prior{ForceConstant: true}
	m, err := ModelMulti(d, DefaultOptions(), prior)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsConstant() {
		t.Fatalf("forced-constant prior produced %s", m)
	}
}

func TestPriorRemovesFalseDependency(t *testing.T) {
	// True function depends on s only; noise may induce a p-dependency in
	// the black-box model. The prior restricted to {s} must exclude p.
	d := synthMulti(func(p, s float64) float64 { return 1e-3 * s * s }, pVals, sVals, 0.05, 4)
	prior := &Prior{Allowed: map[string]bool{"s": true}}
	m, err := ModelMulti(d, DefaultOptions(), prior)
	if err != nil {
		t.Fatal(err)
	}
	if m.DependsOn("p") {
		t.Fatalf("prior failed to exclude p: %s", m)
	}
}

func TestPriorBlocksMultiplicativeCoupling(t *testing.T) {
	d := synthMulti(func(p, s float64) float64 { return 2*p + 3*s }, pVals, sVals, 0, 5)
	prior := &Prior{
		MulOK: func(group []string) bool { return len(group) < 2 },
	}
	m, err := ModelMulti(d, DefaultOptions(), prior)
	if err != nil {
		t.Fatal(err)
	}
	if m.Multiplicative() {
		t.Fatalf("prior failed to block product terms: %s", m)
	}
}

func TestModelStringRendering(t *testing.T) {
	m := &Model{
		Constant: 127,
		Terms: []Term{{
			Coeff:   2.86,
			Factors: map[string]PowLog{"r": {I: 0, J: 2}},
		}},
	}
	s := m.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	// Should mention the log factor and the constant.
	if !contains(s, "log2(r)^2") || !contains(s, "127") {
		t.Fatalf("rendering %q missing pieces", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCombinations(t *testing.T) {
	got := combinations([]string{"a", "b", "c"}, 2)
	if len(got) != 3 {
		t.Fatalf("combinations = %v, want 3 pairs", got)
	}
}

func TestGroupKeyCanonical(t *testing.T) {
	if GroupKey([]string{"s", "p"}) != GroupKey([]string{"p", "s"}) {
		t.Fatal("GroupKey must sort")
	}
}

// Property: the single-parameter search recovers exact PMNF shapes from the
// default space well enough to interpolate within the training range.
func TestModelSingleRecoveryProperty(t *testing.T) {
	shapes := []PowLog{{I: 1}, {I: 2}, {I: 0, J: 1}, {I: 1, J: 1}, {I: 0.5}}
	prop := func(shapeIdx uint8, coeffSeed uint8) bool {
		pl := shapes[int(shapeIdx)%len(shapes)]
		coeff := 1 + float64(coeffSeed%50)
		f := func(x float64) float64 { return 10 + coeff*pl.Eval(x) }
		d := synthSingle(f, sweep)
		m, err := ModelSingle(d, "x", DefaultOptions())
		if err != nil {
			return false
		}
		for _, x := range []float64{6, 24, 96} {
			want := f(x)
			got := m.Eval(map[string]float64{"x": x})
			if math.Abs(got-want) > 0.1*math.Abs(want)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: model evaluation is monotone for positive-coefficient single
// terms — a sanity property for extrapolation use.
func TestModelEvalFiniteProperty(t *testing.T) {
	prop := func(x uint16) bool {
		m := &Model{Constant: 1, Terms: []Term{{Coeff: 2, Factors: map[string]PowLog{"x": {I: 1.5, J: 1}}}}}
		v := m.Eval(map[string]float64{"x": float64(x%4096) + 1})
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidationPenalizesTinyData(t *testing.T) {
	d := synthSingle(func(x float64) float64 { return x }, []float64{2, 4})
	shapes := []Term{{Factors: map[string]PowLog{"x": {I: 1}}}}
	if cv := crossValidate(d, shapes); !math.IsInf(cv, 1) {
		t.Fatalf("cv on 2 points = %g, want +Inf", cv)
	}
}

func TestSliceForHoldsOthersAtMinimum(t *testing.T) {
	d := NewDataset("p", "s")
	for _, p := range []float64{2, 4} {
		for _, s := range []float64{10, 20} {
			d.Add(map[string]float64{"p": p, "s": s}, p*100+s)
		}
	}
	sl := d.sliceFor("p")
	if len(sl.Points) != 2 {
		t.Fatalf("slice size = %d, want 2", len(sl.Points))
	}
	for _, pt := range sl.Points {
		if pt.Mean() != pt.Params["p"]*100+10 {
			t.Fatalf("slice picked wrong s: %+v", pt)
		}
	}
}
