package extrap

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Prior is the white-box restriction Perf-Taint derives from the taint
// analysis (Section 4.5): which parameters may appear in the model at all,
// and which parameter combinations may form multiplicative terms.
type Prior struct {
	// Allowed restricts the parameter set; nil allows every parameter.
	Allowed map[string]bool
	// MulOK reports whether the given parameter group may appear in a
	// single product term; nil allows every combination.
	MulOK func(group []string) bool
	// ForceConstant pins the model to a constant (functions whose loops
	// carry no parameter dependence).
	ForceConstant bool
}

// allowAll is the black-box prior: everything permitted.
func allowAll() *Prior { return &Prior{} }

func (p *Prior) allows(name string) bool {
	if p.Allowed == nil {
		return true
	}
	return p.Allowed[name]
}

func (p *Prior) mulOK(group []string) bool {
	if p.MulOK == nil {
		return true
	}
	return p.MulOK(group)
}

// ModelMulti fits the best multi-parameter PMNF model over the full
// dataset. Following Extra-P's multi-parameter heuristic, the search space
// is reduced to combinations of the best single-parameter models: for each
// active parameter the best one-term shape is determined on that
// parameter's sweep, and hypotheses combine those shapes additively and
// multiplicatively. prior may be nil for pure black-box modeling.
func ModelMulti(d *Dataset, opt Options, prior *Prior) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opt.Space.MaxTerms == 0 {
		opt = DefaultOptions()
	}
	if prior == nil {
		prior = allowAll()
	}

	constModel, err := fitHypothesis(d, nil)
	if err != nil {
		return nil, fmt.Errorf("extrap: constant fit failed: %w", err)
	}
	if prior.ForceConstant {
		constModel.CV = crossValidate(d, nil)
		return constModel, nil
	}

	// Active parameters: at least two distinct values and prior-allowed.
	var active []string
	for _, name := range d.ParamNames {
		if len(d.distinct(name)) >= 2 && prior.allows(name) {
			active = append(active, name)
		}
	}
	sort.Strings(active)
	if len(active) == 0 {
		constModel.CV = crossValidate(d, nil)
		return constModel, nil
	}
	if len(active) == 1 {
		return modelRestricted(d, active, opt, prior)
	}
	return modelRestricted(d, active, opt, prior)
}

// bestShape finds the strongest single-term shape for one parameter using
// its dedicated sweep (the first multi-parameter heuristic of Extra-P).
func bestShape(d *Dataset, param string, opt Options) (PowLog, bool) {
	slice := d.sliceFor(param)
	if len(slice.Points) < 3 {
		return PowLog{}, false
	}
	bestScore := math.Inf(1)
	var best PowLog
	found := false
	for _, pl := range opt.Space.Shapes() {
		shapes := []Term{{Factors: map[string]PowLog{param: pl}}}
		m, err := fitHypothesis(slice, shapes)
		if err != nil {
			continue
		}
		s := opt.score(slice, shapes, m)
		if s < bestScore {
			bestScore, best, found = s, pl, true
		}
	}
	return best, found
}

// modelRestricted runs the combination search over the given parameters.
func modelRestricted(d *Dataset, params []string, opt Options, prior *Prior) (*Model, error) {
	shapes := make(map[string]PowLog, len(params))
	for _, p := range params {
		if pl, ok := bestShape(d, p, opt); ok {
			shapes[p] = pl
		}
	}
	// Build the candidate term pool: one single term per parameter plus
	// product terms for each prior-allowed group of 2..3 parameters.
	var pool []Term
	var have []string
	for _, p := range params {
		if pl, ok := shapes[p]; ok {
			pool = append(pool, Term{Factors: map[string]PowLog{p: pl}})
			have = append(have, p)
		}
	}
	for _, group := range combinations(have, 2) {
		if prior.mulOK(group) {
			pool = append(pool, productTerm(shapes, group))
		}
	}
	if len(have) >= 3 {
		for _, group := range combinations(have, 3) {
			if prior.mulOK(group) {
				pool = append(pool, productTerm(shapes, group))
			}
		}
	}

	constModel, err := fitHypothesis(d, nil)
	if err != nil {
		return nil, err
	}
	best := scored{model: constModel, score: opt.score(d, nil, constModel)}
	bestComplexity := 0

	maxTerms := opt.Space.MaxTerms
	if maxTerms < 1 {
		maxTerms = 2
	}
	var hyps [][]Term
	for i := range pool {
		hyps = append(hyps, []Term{pool[i]})
	}
	if maxTerms >= 2 {
		for i := range pool {
			for j := i + 1; j < len(pool); j++ {
				hyps = append(hyps, []Term{pool[i], pool[j]})
			}
		}
	}
	if maxTerms >= 3 {
		for i := range pool {
			for j := i + 1; j < len(pool); j++ {
				for k := j + 1; k < len(pool); k++ {
					hyps = append(hyps, []Term{pool[i], pool[j], pool[k]})
				}
			}
		}
	}

	for _, h := range hyps {
		m, err := fitHypothesis(d, h)
		if err != nil {
			continue
		}
		s := opt.score(d, h, m)
		c := complexity(h)
		switch {
		case improves(s, best.score, opt.MinImprovement):
			best = scored{model: m, shapes: h, score: s}
			bestComplexity = c
		case c < bestComplexity && s <= best.score:
			// Equal quality at lower complexity wins (Occam).
			best = scored{model: m, shapes: h, score: s}
			bestComplexity = c
		}
	}
	best.model.CV = crossValidate(d, best.shapes)
	return best.model, nil
}

// complexity orders hypotheses: more terms and more coupled parameters are
// more complex.
func complexity(shapes []Term) int {
	c := 0
	for _, t := range shapes {
		c += 1 + len(t.Params())
	}
	return c
}

// productTerm multiplies the per-parameter shapes of group into one term.
func productTerm(shapes map[string]PowLog, group []string) Term {
	f := make(map[string]PowLog, len(group))
	for _, p := range group {
		f[p] = shapes[p]
	}
	return Term{Factors: f}
}

// combinations returns all k-subsets of items preserving order.
func combinations(items []string, k int) [][]string {
	var out [][]string
	var rec func(start int, cur []string)
	rec = func(start int, cur []string) {
		if len(cur) == k {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := start; i < len(items); i++ {
			rec(i+1, append(cur, items[i]))
		}
	}
	rec(0, nil)
	return out
}

// GroupKey canonicalizes a parameter group for prior lookups.
func GroupKey(group []string) string {
	g := append([]string(nil), group...)
	sort.Strings(g)
	return strings.Join(g, ",")
}
