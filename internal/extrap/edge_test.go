package extrap

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestConstantMetric pins the degenerate dataset every sweep produces
// for parameter-independent functions: the search must settle on the
// constant hypothesis, not hallucinate structure.
func TestConstantMetric(t *testing.T) {
	d := NewDataset("p")
	for _, p := range []float64{2, 4, 8, 16, 32} {
		d.Add(map[string]float64{"p": p}, 7, 7, 7)
	}
	m, err := ModelSingle(d, "p", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsConstant() {
		t.Fatalf("constant data fit a parametric model: %s", m)
	}
	if math.Abs(m.Constant-7) > 1e-9 {
		t.Fatalf("constant off: %v", m.Constant)
	}
	mm, err := ModelMulti(d, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !mm.IsConstant() {
		t.Fatalf("multi search broke the constant: %s", mm)
	}
}

// TestSinglePoint: one design point can only support the constant
// hypothesis; the fit must succeed (not crash or go singular) and the
// cross-validation score must be unusable, not misleading.
func TestSinglePoint(t *testing.T) {
	d := NewDataset("p")
	d.Add(map[string]float64{"p": 8}, 3.5)
	m, err := ModelSingle(d, "p", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsConstant() || math.Abs(m.Constant-3.5) > 1e-9 {
		t.Fatalf("single-point fit: %s", m)
	}
	if !math.IsInf(m.CV, 1) {
		t.Fatalf("CV on one point should be +Inf, got %v", m.CV)
	}
}

// TestRankDeficient feeds a multi-parameter dataset whose parameters
// are perfectly collinear (p == size everywhere): product hypotheses go
// singular and must be skipped, not returned as garbage coefficients.
func TestRankDeficient(t *testing.T) {
	d := NewDataset("p", "size")
	for _, v := range []float64{2, 4, 8, 16, 32} {
		d.Add(map[string]float64{"p": v, "size": v}, 3*v)
	}
	m, err := ModelMulti(d, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range m.Terms {
		for _, c := range []float64{term.Coeff, m.Constant} {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("non-finite coefficient in %s", m)
			}
		}
	}
}

// TestNonFiniteGuard: NaN/Inf anywhere in a dataset must be rejected at
// validation, before it can poison a normal-equation solve.
func TestNonFiniteGuard(t *testing.T) {
	cases := []struct {
		name string
		fill func(*Dataset)
	}{
		{"NaN value", func(d *Dataset) { d.Add(map[string]float64{"p": 2}, math.NaN()) }},
		{"Inf value", func(d *Dataset) { d.Add(map[string]float64{"p": 2}, math.Inf(1)) }},
		{"NaN param", func(d *Dataset) { d.Add(map[string]float64{"p": math.NaN()}, 1) }},
		{"Inf param", func(d *Dataset) { d.Add(map[string]float64{"p": math.Inf(-1)}, 1) }},
	}
	for _, tc := range cases {
		d := NewDataset("p")
		d.Add(map[string]float64{"p": 4}, 2)
		tc.fill(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate passed", tc.name)
		}
		if _, err := ModelSingle(d, "p", DefaultOptions()); err == nil {
			t.Errorf("%s: ModelSingle fit non-finite data", tc.name)
		}
	}
}

// TestFitAllSurfacesTypedErrors pins the FitError contract: a failing
// request yields a nil model and a *FitError naming the job, never a
// zero-value model, and sibling requests are unaffected.
func TestFitAllSurfacesTypedErrors(t *testing.T) {
	good := NewDataset("p")
	for _, p := range []float64{2, 4, 8, 16} {
		good.Add(map[string]float64{"p": p}, 2*p)
	}
	bad := NewDataset("p") // empty: validation must fail

	fits := FitAll([]Request{
		{Name: "good", Dataset: good, Param: "p"},
		{Name: "bad", Dataset: bad, Param: "p"},
		{Name: "bad-multi", Dataset: bad},
	}, DefaultOptions(), 2)

	if fits[0].Err != nil || fits[0].Model == nil {
		t.Fatalf("good fit poisoned by sibling failure: %+v", fits[0])
	}
	for _, f := range fits[1:] {
		if f.Err == nil {
			t.Fatalf("%s: failure dropped", f.Name)
		}
		if f.Model != nil {
			t.Fatalf("%s: zero-value model returned alongside the error", f.Name)
		}
		var fe *FitError
		if !errors.As(f.Err, &fe) {
			t.Fatalf("%s: error %v is not a *FitError", f.Name, f.Err)
		}
		if fe.Name != f.Name {
			t.Fatalf("FitError names %q, want %q", fe.Name, f.Name)
		}
		if !strings.Contains(fe.Error(), f.Name) {
			t.Fatalf("FitError message omits the job: %q", fe.Error())
		}
	}
	if fits[1].Err.(*FitError).Param != "p" {
		t.Fatalf("single-parameter failure lost its param: %+v", fits[1].Err)
	}
	if err := FirstFitErr(fits); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("FirstFitErr: %v", err)
	}
	if err := FirstFitErr(fits[:1]); err != nil {
		t.Fatalf("FirstFitErr on clean batch: %v", err)
	}
}
