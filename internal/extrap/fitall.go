package extrap

import "repro/internal/par"

// Request names one model-fitting job of a batch fit: a dataset plus the
// prior restricting its search space. Repeated-measurement fits of
// different functions are independent, so FitAll runs them concurrently.
type Request struct {
	// Name tags the job (conventionally the function being modeled).
	Name    string
	Dataset *Dataset
	// Param, when non-empty, requests a single-parameter fit over that
	// parameter (ModelSingle); otherwise the multi-parameter search runs.
	Param string
	// Prior is the white-box restriction; nil means black-box.
	Prior *Prior
}

// Fit is the outcome of one Request, in request order.
type Fit struct {
	Name  string
	Model *Model
	Err   error
}

// FitAll fits every request on at most workers goroutines (workers <= 0
// means GOMAXPROCS) and returns results in request order. Each fit is
// independent: a failing request only marks its own Fit.Err.
func FitAll(reqs []Request, opt Options, workers int) []Fit {
	out := make([]Fit, len(reqs))
	par.ForEach(workers, len(reqs), func(i int) {
		req := reqs[i]
		f := Fit{Name: req.Name}
		if req.Param != "" {
			f.Model, f.Err = ModelSingle(req.Dataset, req.Param, opt)
		} else {
			f.Model, f.Err = ModelMulti(req.Dataset, opt, req.Prior)
		}
		out[i] = f
	})
	return out
}
