package extrap

import (
	"fmt"

	"repro/internal/par"
)

// Request names one model-fitting job of a batch fit: a dataset plus the
// prior restricting its search space. Repeated-measurement fits of
// different functions are independent, so FitAll runs them concurrently.
type Request struct {
	// Name tags the job (conventionally the function being modeled).
	Name    string
	Dataset *Dataset
	// Param, when non-empty, requests a single-parameter fit over that
	// parameter (ModelSingle); otherwise the multi-parameter search runs.
	Param string
	// Prior is the white-box restriction; nil means black-box.
	Prior *Prior
}

// Fit is the outcome of one Request, in request order. A failed fit
// carries a nil Model and a non-nil *FitError — callers that range over
// batch results must check Err before using Model, and the helpers
// (FirstFitErr, modelreg's pipeline) propagate failures as typed errors
// instead of zero-value models.
type Fit struct {
	Name  string
	Model *Model
	// Err, when non-nil, is always a *FitError wrapping the solver or
	// validation failure of this one request.
	Err error
}

// FitError is the typed per-request failure of a batch fit: which job
// failed, over which parameter (empty for multi-parameter searches), and
// the underlying solver or validation error. errors.As-able through any
// wrapping the pipeline adds on top.
type FitError struct {
	// Name is the Request.Name of the failed job.
	Name string
	// Param is the Request.Param of a single-parameter fit, "" otherwise.
	Param string
	// Err is the underlying failure (validation, singular system, ...).
	Err error
}

// Error renders the failure with its job name.
func (e *FitError) Error() string {
	if e.Param != "" {
		return fmt.Sprintf("extrap: fit %q over %q: %v", e.Name, e.Param, e.Err)
	}
	return fmt.Sprintf("extrap: fit %q: %v", e.Name, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *FitError) Unwrap() error { return e.Err }

// FitAll fits every request on at most workers goroutines (workers <= 0
// means GOMAXPROCS) and returns results in request order. Each fit is
// independent: a failing request only marks its own Fit.Err (always a
// *FitError), never the whole batch.
func FitAll(reqs []Request, opt Options, workers int) []Fit {
	out := make([]Fit, len(reqs))
	par.ForEach(workers, len(reqs), func(i int) {
		req := reqs[i]
		f := Fit{Name: req.Name}
		var err error
		if req.Param != "" {
			f.Model, err = ModelSingle(req.Dataset, req.Param, opt)
		} else {
			f.Model, err = ModelMulti(req.Dataset, opt, req.Prior)
		}
		if err != nil {
			f.Model = nil
			f.Err = &FitError{Name: req.Name, Param: req.Param, Err: err}
		}
		out[i] = f
	})
	return out
}

// FirstFitErr returns the first failed fit of a batch in request order,
// or nil when every request succeeded.
func FirstFitErr(fits []Fit) error {
	for _, f := range fits {
		if f.Err != nil {
			return f.Err
		}
	}
	return nil
}
