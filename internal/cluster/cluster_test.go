package cluster

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/noise"
)

func TestContentionFactorShape(t *testing.T) {
	m := Skylake()
	if got := m.ContentionFactor(0.8, 1); got != 1 {
		t.Fatalf("single rank contention = %g, want 1", got)
	}
	if got := m.ContentionFactor(0, 36); got != 1 {
		t.Fatalf("zero intensity contention = %g, want 1", got)
	}
	// Monotone in r and in memory intensity.
	if !(m.ContentionFactor(0.8, 18) > m.ContentionFactor(0.8, 4)) {
		t.Fatal("contention must grow with co-location")
	}
	if !(m.ContentionFactor(0.9, 18) > m.ContentionFactor(0.2, 18)) {
		t.Fatal("contention must grow with memory intensity")
	}
	// C1 regime: around +50% for a memory-bound function at full socket.
	f := m.ContentionFactor(0.85, 18)
	if f < 1.2 || f > 2.2 {
		t.Fatalf("contention at r=18 = %g, want ~1.5", f)
	}
}

func TestRanksPerNodePacking(t *testing.T) {
	m := Skylake()
	if got := m.RanksPerNode(8); got != 8 {
		t.Fatalf("RanksPerNode(8) = %d", got)
	}
	if got := m.RanksPerNode(729); got != 36 {
		t.Fatalf("RanksPerNode(729) = %d, want 36", got)
	}
}

func TestMeasureProducesProfiles(t *testing.T) {
	spec := apps.LULESH()
	r := NewRunner(spec)
	cfg := apps.LULESHDefaults()
	cfg["p"] = 27
	cfg["size"] = 25
	cfg["iters"] = 50

	prof, err := r.Measure(cfg, nil, 3, noise.Quiet())
	if err != nil {
		t.Fatal(err)
	}
	if prof.OverheadSeconds != 0 {
		t.Fatalf("uninstrumented overhead = %g, want 0", prof.OverheadSeconds)
	}
	if len(prof.FuncSeconds["CalcForceForNodes"]) != 3 {
		t.Fatal("wrong repeat count")
	}
	if prof.BaseSeconds <= 0 {
		t.Fatal("no base time")
	}
	// MPI functions with calls must be measured too.
	if _, ok := prof.FuncSeconds["MPI_Allreduce"]; !ok {
		t.Fatal("MPI function missing from profile")
	}
}

func TestFullInstrumentationDwarfsTaintSet(t *testing.T) {
	spec := apps.LULESH()
	r := NewRunner(spec)
	cfg := apps.LULESHDefaults()
	cfg["p"] = 64
	cfg["size"] = 30
	cfg["iters"] = 100

	full := make(map[string]bool)
	for _, f := range spec.Funcs {
		full[f.Name] = true
	}
	small := map[string]bool{"main": true, "CalcQForElems": true}

	pf, err := r.Measure(cfg, full, 1, noise.Quiet())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := r.Measure(cfg, small, 1, noise.Quiet())
	if err != nil {
		t.Fatal(err)
	}
	if pf.OverheadSeconds < 50*ps.OverheadSeconds {
		t.Fatalf("full overhead %gs vs selective %gs: getter storm missing",
			pf.OverheadSeconds, ps.OverheadSeconds)
	}
}

func TestSkewAppliesOnlyUnderHeavyInstrumentation(t *testing.T) {
	spec := apps.LULESH()
	r := NewRunner(spec)
	cfg := apps.LULESHDefaults()
	cfg["p"] = 729
	cfg["size"] = 30
	cfg["iters"] = 500

	full := make(map[string]bool)
	for _, f := range spec.Funcs {
		full[f.Name] = true
	}
	taint := map[string]bool{"CalcQForElems": true}

	pf, err := r.Measure(cfg, full, 1, noise.Quiet())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := r.Measure(cfg, taint, 1, noise.Quiet())
	if err != nil {
		t.Fatal(err)
	}
	tf := pf.FuncSeconds["CalcQForElems"][0]
	tt := pt.FuncSeconds["CalcQForElems"][0]
	if tf < 2*tt {
		t.Fatalf("full-instr time %gs vs filtered %gs: intrusion invisible", tf, tt)
	}
}

func TestContentionAffectsMeasurements(t *testing.T) {
	spec := apps.LULESH()
	r := NewRunner(spec)
	cfg := apps.LULESHDefaults()
	cfg["p"] = 64
	cfg["size"] = 30
	cfg["iters"] = 100

	r.RanksPerNodeOverride = 2
	lo, err := r.Measure(cfg, nil, 1, noise.Quiet())
	if err != nil {
		t.Fatal(err)
	}
	r.RanksPerNodeOverride = 18
	hi, err := r.Measure(cfg, nil, 1, noise.Quiet())
	if err != nil {
		t.Fatal(err)
	}
	r.RanksPerNodeOverride = 0

	a := lo.FuncSeconds["CalcQForElems"][0]
	b := hi.FuncSeconds["CalcQForElems"][0]
	if b <= a*1.1 {
		t.Fatalf("no contention slowdown: %g -> %g", a, b)
	}
	// Ratio should be in the C1 regime (~1.5x for memory-bound kernels).
	if b/a > 3 {
		t.Fatalf("contention too strong: %gx", b/a)
	}
}

func TestCoreHours(t *testing.T) {
	spec := apps.LULESH()
	r := NewRunner(spec)
	cfg := apps.LULESHDefaults()
	cfg["p"] = 27
	cfg["size"] = 25
	cfg["iters"] = 100

	ch, err := r.CoreHours(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch <= 0 {
		t.Fatal("core-hours must be positive")
	}
	full := make(map[string]bool)
	for _, f := range spec.Funcs {
		full[f.Name] = true
	}
	chFull, err := r.CoreHours(cfg, full)
	if err != nil {
		t.Fatal(err)
	}
	if chFull <= ch {
		t.Fatal("instrumented run must cost more")
	}
}

func TestReachesMPI(t *testing.T) {
	spec := apps.LULESH()
	m := reachesMPI(spec)
	if !m["CalcQForElems"] {
		t.Error("CalcQForElems reaches MPI via CommSBN")
	}
	if !m["main"] {
		t.Error("main reaches MPI")
	}
	if m["Domain_get000"] {
		t.Error("getter does not reach MPI")
	}
	if math.MaxInt32 < len(m) {
		t.Fatal("unreachable")
	}
}

func TestImbalanceFactorShape(t *testing.T) {
	m := Skylake()
	if m.ImbalanceFactor(0.3, 1) != 1 {
		t.Error("single rank cannot straggle")
	}
	if m.ImbalanceFactor(0, 64) != 1 {
		t.Error("zero skew must not stretch")
	}
	f16, f64 := m.ImbalanceFactor(0.3, 16), m.ImbalanceFactor(0.3, 64)
	if !(f64 > f16 && f16 > 1) {
		t.Errorf("imbalance must grow with p: f(16)=%g f(64)=%g", f16, f64)
	}
	// log2 shape: 1 + skew*log2(p).
	if got, want := m.ImbalanceFactor(0.5, 16), 1+0.5*4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ImbalanceFactor(0.5,16) = %g, want %g", got, want)
	}
}

// TestImbalanceStretchesMeasurement pins the Measure-side application: a
// skewed function's measured time is its analytic ground truth times the
// imbalance factor, while an unskewed sibling stays at ground truth. The
// ground truth itself must remain rank-symmetric (no skew term).
func TestImbalanceStretchesMeasurement(t *testing.T) {
	s := &apps.Spec{
		Name:   "imb",
		Params: []string{"n"},
		Funcs: []*apps.FuncSpec{
			{Name: "main", Kind: apps.KindMain, Body: []apps.Stmt{
				apps.Call{Callee: "worker"}, apps.Call{Callee: "steady"},
			}},
			{Name: "worker", Kind: apps.KindKernel, WorkNanos: 10, ImbalanceSkew: 0.4,
				Body: []apps.Stmt{apps.Loop{Kind: apps.ParamBound, Bound: apps.QP(1, "n", 1),
					Body: []apps.Stmt{apps.Work{Units: 100}}}}},
			{Name: "steady", Kind: apps.KindKernel, WorkNanos: 10,
				Body: []apps.Stmt{apps.Loop{Kind: apps.ParamBound, Bound: apps.QP(1, "n", 1),
					Body: []apps.Stmt{apps.Work{Units: 100}}}}},
		},
	}
	r := NewRunner(s)
	r.RanksPerNodeOverride = 1 // no contention, isolate the imbalance term
	cfg := apps.Config{"n": 50, "p": 16}
	g, err := apps.Evaluate(s, cfg, r.Cost)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := r.Measure(cfg, nil, 1, noise.Quiet())
	if err != nil {
		t.Fatal(err)
	}
	wantWorker := g.ExclSeconds["worker"] * r.Machine.ImbalanceFactor(0.4, 16)
	if got := prof.FuncSeconds["worker"][0]; math.Abs(got-wantWorker) > 1e-12*wantWorker {
		t.Errorf("worker measured %g, want %g (ground %g stretched)", got, wantWorker, g.ExclSeconds["worker"])
	}
	if got, want := prof.FuncSeconds["steady"][0], g.ExclSeconds["steady"]; math.Abs(got-want) > 1e-12*want {
		t.Errorf("steady measured %g, want ground truth %g", got, want)
	}
	if g.ExclSeconds["worker"] != g.ExclSeconds["steady"] {
		t.Error("ground truth must stay rank-symmetric: skew is a measurement effect")
	}
}
