// Package cluster models the execution machine: node geometry, rank
// placement, and the memory-bandwidth contention that co-located ranks
// inflict on memory-intensive kernels. It turns an application's analytic
// ground truth into synthetic measurements with contention, noise, and
// instrumentation intrusion — the data the empirical modeler consumes.
//
// Contention reproduces Section C1: functions with no source-level
// dependence on the rank count slow down as more ranks share a socket,
// which the taint-informed pipeline can expose as a hardware effect because
// it knows the dependence cannot come from the code.
package cluster

import (
	"math"

	"repro/internal/apps"
	"repro/internal/mpisim"
	"repro/internal/noise"
)

// Machine describes the node architecture.
type Machine struct {
	// CoresPerNode bounds ranks per node (36 for the paper's Skylake).
	CoresPerNode int
	// ContLinear and ContQuad shape the contention factor
	// 1 + mem*(ContLinear*log2(r) + ContQuad*log2(r)^2) for r co-located
	// ranks and a function of memory intensity mem.
	ContLinear float64
	ContQuad   float64
}

// Skylake returns the evaluation machine: two 18-core sockets per node.
func Skylake() Machine {
	return Machine{CoresPerNode: 36, ContLinear: 0.11, ContQuad: 0.018}
}

// ContentionFactor is the slowdown of a function with memory intensity mem
// when r ranks share a node.
func (m Machine) ContentionFactor(mem float64, r int) float64 {
	if r <= 1 || mem <= 0 {
		return 1
	}
	l := math.Log2(float64(r))
	return 1 + mem*(m.ContLinear*l+m.ContQuad*l*l)
}

// ImbalanceFactor is the critical-path stretch of a function with load
// imbalance skew when p ranks participate: the slowest straggler of p
// ranks lags the mean by roughly skew*log2(p). Like ContentionFactor it
// is a machine-side effect layered on the rank-symmetric ground truth.
func (m Machine) ImbalanceFactor(skew float64, p int) float64 {
	if p <= 1 || skew <= 0 {
		return 1
	}
	return 1 + skew*math.Log2(float64(p))
}

// RanksPerNode derives the per-node rank count for p total ranks when
// packed onto as few nodes as possible.
func (m Machine) RanksPerNode(p int) int {
	if p <= m.CoresPerNode {
		return p
	}
	return m.CoresPerNode
}

// Intrusion models the measurement-infrastructure cost (Score-P analog).
type Intrusion struct {
	// PerEventSeconds is charged per instrumented function call
	// (enter+exit pair).
	PerEventSeconds float64
	// FlushSeconds is charged per million instrumented events, scaled by
	// sqrt(p): profile-buffer management grows with both event volume and
	// rank count.
	FlushSeconds float64
	// BufferCapacity is the event count beyond which instrumentation
	// perturbs synchronization: ranks drift apart while flushing, and
	// functions whose subtree communicates absorb a wait-time skew of
	// SkewSeconds*sqrt(p). This is the mechanism that qualitatively
	// distorts models under full instrumentation (B2).
	BufferCapacity float64
	SkewSeconds    float64
}

// DefaultIntrusion uses a 0.6us event cost, the regime of compiler
// instrumentation with PAPI-free Score-P.
func DefaultIntrusion() Intrusion {
	return Intrusion{
		PerEventSeconds: 0.6e-6,
		FlushSeconds:    2e-3,
		BufferCapacity:  1e6,
		SkewSeconds:     0.3,
	}
}

// Runner synthesizes measurements for one application on one machine.
type Runner struct {
	Spec      *apps.Spec
	Cost      mpisim.CostModel
	Machine   Machine
	Intrusion Intrusion
	// RanksPerNodeOverride, when > 0, pins the co-location degree (the C1
	// experiment varies it at fixed p).
	RanksPerNodeOverride int
}

// NewRunner assembles a runner with evaluation defaults.
func NewRunner(spec *apps.Spec) *Runner {
	return &Runner{
		Spec:      spec,
		Cost:      mpisim.DefaultCost(),
		Machine:   Skylake(),
		Intrusion: DefaultIntrusion(),
	}
}

// Profile is one synthetic measurement of an application configuration.
type Profile struct {
	Cfg apps.Config
	// FuncSeconds maps function name to repeated measurements of its
	// per-run time (exclusive compute under contention + its direct
	// communication + instrumentation charged to it).
	FuncSeconds map[string][]float64
	// AppSeconds is the total application time per repeat.
	AppSeconds []float64
	// BaseSeconds is the uninstrumented, noise-free application time.
	BaseSeconds float64
	// OverheadSeconds is the instrumentation cost added to the run.
	OverheadSeconds float64
	// Calls carries the ground-truth call counts (visit counts in Score-P
	// terms).
	Calls map[string]float64
}

// Measure synthesizes reps repeated measurements of cfg. instrumented
// selects the functions carrying measurement probes (nil = none); src
// provides the noise stream.
func (r *Runner) Measure(cfg apps.Config, instrumented map[string]bool, reps int, src *noise.Source) (*Profile, error) {
	g, err := apps.Evaluate(r.Spec, cfg, r.Cost)
	if err != nil {
		return nil, err
	}
	p := int(cfg["p"])
	rpn := r.Machine.RanksPerNode(p)
	if r.RanksPerNodeOverride > 0 {
		rpn = r.RanksPerNodeOverride
	}

	prof := &Profile{
		Cfg:         cfg.Clone(),
		FuncSeconds: make(map[string][]float64),
		Calls:       g.Calls,
		BaseSeconds: g.TotalSeconds(),
	}

	// Instrumented event volume per function: own events plus events of
	// instrumented direct callees (the getter storm lands on its callers).
	eventsOf := func(name string) float64 {
		ev := 0.0
		if instrumented[name] {
			ev += g.Calls[name]
		}
		for callee, n := range g.CallsFrom[name] {
			if instrumented[callee] {
				ev += n
			}
		}
		return ev
	}
	reaches := reachesMPI(r.Spec)
	sqrtP := math.Sqrt(float64(p))
	ovhOf := func(name string) float64 {
		ev := eventsOf(name)
		ovh := r.Intrusion.PerEventSeconds * ev
		ovh += r.Intrusion.FlushSeconds * ev / 1e6 * sqrtP
		if ev > r.Intrusion.BufferCapacity && reaches[name] {
			ovh += r.Intrusion.SkewSeconds * sqrtP
		}
		return ovh
	}
	totalEvents := 0.0
	for name, on := range instrumented {
		if on {
			totalEvents += g.Calls[name]
		}
	}
	totalOvh := r.Intrusion.PerEventSeconds*totalEvents +
		r.Intrusion.FlushSeconds*totalEvents/1e6*sqrtP
	prof.OverheadSeconds = totalOvh

	for _, f := range r.Spec.Funcs {
		cont := r.Machine.ContentionFactor(f.MemIntensity, rpn)
		imb := r.Machine.ImbalanceFactor(f.ImbalanceSkew, p)
		trueTime := g.ExclSeconds[f.Name]*cont*imb + g.CommByCaller[f.Name] + ovhOf(f.Name)
		prof.FuncSeconds[f.Name] = src.Repeat(trueTime, reps)
	}
	for _, mname := range r.Spec.MPIUsed {
		if g.Calls[mname] == 0 {
			continue
		}
		prof.FuncSeconds[mname] = src.Repeat(g.CommSeconds[mname], reps)
	}
	appTrue := g.TotalSeconds()*r.appFactor(g, rpn, p) + totalOvh
	prof.AppSeconds = src.Repeat(appTrue, reps)
	return prof, nil
}

// reachesMPI marks spec functions whose call subtree contains an MPI call.
func reachesMPI(s *apps.Spec) map[string]bool {
	mpi := make(map[string]bool, len(s.MPIUsed))
	for _, m := range s.MPIUsed {
		mpi[m] = true
	}
	memo := make(map[string]int) // 0 unknown, 1 no, 2 yes
	var scan func(body []apps.Stmt) bool
	var visit func(name string) bool
	scan = func(body []apps.Stmt) bool {
		for _, st := range body {
			switch v := st.(type) {
			case apps.Loop:
				if scan(v.Body) {
					return true
				}
			case apps.Branch:
				if scan(v.Then) || scan(v.Else) {
					return true
				}
			case apps.Call:
				if mpi[v.Callee] || visit(v.Callee) {
					return true
				}
			}
		}
		return false
	}
	visit = func(name string) bool {
		switch memo[name] {
		case 1:
			return false
		case 2:
			return true
		}
		memo[name] = 1 // break cycles conservatively
		f := s.FuncByName(name)
		if f == nil {
			return false
		}
		if scan(f.Body) {
			memo[name] = 2
			return true
		}
		return false
	}
	out := make(map[string]bool, len(s.Funcs))
	for _, f := range s.Funcs {
		out[f.Name] = visit(f.Name)
	}
	return out
}

// appFactor averages the per-function contention and imbalance stretch
// weighted by exclusive time, giving the whole-application slowdown.
func (r *Runner) appFactor(g *apps.Ground, rpn, p int) float64 {
	total, weighted := 0.0, 0.0
	for _, f := range r.Spec.Funcs {
		t := g.ExclSeconds[f.Name]
		total += t
		weighted += t * r.Machine.ContentionFactor(f.MemIntensity, rpn) *
			r.Machine.ImbalanceFactor(f.ImbalanceSkew, p)
	}
	if total == 0 {
		return 1
	}
	return weighted / total
}

// CoreHours returns the cost of one run at cfg in core-hours, including
// instrumentation overhead.
func (r *Runner) CoreHours(cfg apps.Config, instrumented map[string]bool) (float64, error) {
	prof, err := r.Measure(cfg, instrumented, 1, noise.Quiet())
	if err != nil {
		return 0, err
	}
	secs := prof.BaseSeconds + prof.OverheadSeconds
	return secs * cfg["p"] / 3600, nil
}
