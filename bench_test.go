package perftaint

import (
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/extrap"
	"repro/internal/interp"
	"repro/internal/libdb"
	"repro/internal/runner"
	"repro/internal/taint"
)

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	BenchmarkTable2          — pruning census (Table 2)
//	BenchmarkTable3          — parameter coverage (Table 3)
//	BenchmarkFigure3         — LULESH instrumentation overhead (Figure 3)
//	BenchmarkFigure4         — MILC instrumentation overhead (Figure 4)
//	BenchmarkDesignReduction — experiment-design reduction (A2)
//	BenchmarkCoreHours       — campaign core-hour costs (A3)
//	BenchmarkNoiseResilience — false-dependency pruning (B1)
//	BenchmarkIntrusion       — CalcQForElems model distortion (B2)
//	BenchmarkContention      — ranks-per-node contention (Figure 5 / C1)
//	BenchmarkValidation      — segmented-behaviour detection (C2)
//
// plus micro-benchmarks of the substrates (tainted interpretation, label
// union, PMNF fitting).

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() { benchCtx, benchErr = experiments.NewContext() })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

func BenchmarkTable2(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(ctx)
		if res.LULESH.FunctionsTotal != 356 {
			b.Fatal("census broken")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := experiments.Table3(ctx); len(rs) != 2 {
			b.Fatal("coverage broken")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignReduction(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := experiments.DesignReduction(ctx); len(rs) != 2 {
			b.Fatal("design reduction broken")
		}
	}
}

func BenchmarkCoreHours(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CoreHourCosts(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoiseResilience(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NoiseResilienceAll(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntrusion(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Intrusion(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContention(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Contention(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidation(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Validation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- batch runner benchmarks ---

// batchSweep is the 8-config LULESH grid the batch benchmarks share.
func batchSweep() (*apps.Spec, []apps.Config) {
	d := runner.Design{
		Spec:     apps.LULESH(),
		Defaults: apps.LULESHTaintConfig(),
		Axes: []runner.Axis{
			{Param: "p", Values: []float64{2, 4, 8, 16}},
			{Param: "size", Values: []float64{5, 6}},
		},
	}
	return d.Spec, d.Configs()
}

// BenchmarkBatchAnalyze measures the worker-pool batch: one shared
// preparation (module build, verification, static pass), dynamic runs
// fanned across GOMAXPROCS. Compare against BenchmarkSequentialAnalyze —
// the acceptance target is >1.5x at 4+ cores.
func BenchmarkBatchAnalyze(b *testing.B) {
	spec, cfgs := batchSweep()
	r := runner.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.AnalyzeBatch(spec, cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if err := runner.FirstErr(res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialAnalyze is the pre-runner flow: each configuration
// rebuilds the module and re-runs the static pass.
func BenchmarkSequentialAnalyze(b *testing.B) {
	spec, cfgs := batchSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := core.Analyze(spec, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepParallel runs the paper's 25-point LULESH modeling design
// (Table 2 grid at the cheap taint-run size) through Runner.Sweep.
func BenchmarkSweepParallel(b *testing.B) {
	ps, _ := apps.LULESHModelValues()
	d := runner.Design{
		Spec:     apps.LULESH(),
		Defaults: apps.LULESHTaintConfig(),
		Axes: []runner.Axis{
			{Param: "p", Values: ps},
			{Param: "size", Values: []float64{4, 5, 6, 7, 8}},
		},
	}
	r := runner.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Sweep(d)
		if err != nil {
			b.Fatal(err)
		}
		if err := runner.FirstErr(res); err != nil {
			b.Fatal(err)
		}
	}
}

// --- interpreter engine benchmarks ---

// interpBench runs one spec configuration through the interpreter in the
// given mode and reports ns per interpreted instruction, the fast engine's
// acceptance metric (>=2x improvement over the reference engine).
func interpBench(b *testing.B, spec *apps.Spec, cfg apps.Config, mode interp.Mode, tainted bool) {
	b.Helper()
	mod, err := apps.BuildModule(spec)
	if err != nil {
		b.Fatal(err)
	}
	// Predecoding happens once per spec (it is cached on core.Prepared in
	// the pipeline), so it sits outside the measured loop; likewise the
	// compiled-closure artifact, which the pipeline shares per spec digest.
	prog := interp.Predecode(mod)
	var cp *interp.Compiled
	if mode == interp.ModeCompiled {
		cp = interp.Compile(prog)
	}
	db := libdb.DefaultMPI()
	args := apps.TaintArgs(spec, cfg)
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var eng *taint.Engine
		var labels []taint.Label
		mach := interp.NewMachine(mod)
		mach.Mode = mode
		mach.Prog = prog
		mach.Compiled = cp
		mach.Fuel = 4_000_000_000
		if tainted {
			eng = taint.NewEngine()
			mach.Taint = eng
			labels = make([]taint.Label, len(spec.Params))
			for j, prm := range spec.Params {
				labels[j] = eng.Table.Base(prm)
			}
		}
		db.Bind(mach, eng, libdb.RunConfig{CommSize: int64(cfg["p"]), Rank: 0})
		res, err := mach.Run("main", args, labels)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instructions
	}
	if total > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/instr")
	}
}

// interpBenchApps enumerates the benchmarked workloads: the quickstart
// analysis configuration (LULESH at the paper's taint run) and the MILC
// taint run.
func interpBenchApps(b *testing.B, tainted bool) {
	for _, app := range []struct {
		name string
		spec *apps.Spec
		cfg  apps.Config
	}{
		{"quickstart", apps.LULESH(), apps.LULESHTaintConfig()},
		{"milc", apps.MILC(), apps.MILCTaintConfig()},
	} {
		for _, m := range []struct {
			name string
			mode interp.Mode
		}{
			{"compiled", interp.ModeCompiled},
			{"fast", interp.ModeFast},
			{"reference", interp.ModeReference},
		} {
			b.Run(app.name+"/"+m.name, func(b *testing.B) {
				interpBench(b, app.spec, app.cfg, m.mode, tainted)
			})
		}
	}
}

// BenchmarkTaintedRun measures the dominant pipeline cost: the dynamic
// tainted execution, under both engines.
func BenchmarkTaintedRun(b *testing.B) { interpBenchApps(b, true) }

// BenchmarkUntaintedRun measures plain interpretation without a taint
// engine (the native-run analog of the overhead experiments).
func BenchmarkUntaintedRun(b *testing.B) { interpBenchApps(b, false) }

// BenchmarkCompiledRun isolates the compiled-closure engine on the same
// workloads (tainted and untainted), including the one-time Compile cost
// amortized outside the loop the way the prepared-spec cache amortizes it
// in the pipeline.
func BenchmarkCompiledRun(b *testing.B) {
	for _, app := range []struct {
		name string
		spec *apps.Spec
		cfg  apps.Config
	}{
		{"quickstart", apps.LULESH(), apps.LULESHTaintConfig()},
		{"milc", apps.MILC(), apps.MILCTaintConfig()},
	} {
		for _, tv := range []struct {
			name    string
			tainted bool
		}{{"tainted", true}, {"untainted", false}} {
			b.Run(app.name+"/"+tv.name, func(b *testing.B) {
				interpBench(b, app.spec, app.cfg, interp.ModeCompiled, tv.tainted)
			})
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkTaintedRunLULESH(b *testing.B) {
	spec := apps.LULESH()
	cfg := apps.LULESHTaintConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterPlainRun(b *testing.B) {
	spec := apps.LULESH()
	mod, err := apps.BuildModule(spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := apps.LULESHTaintConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mach := interp.NewMachine(mod)
		libdb.DefaultMPI().Bind(mach, nil, libdb.RunConfig{CommSize: 8})
		if _, err := mach.Run("main", apps.TaintArgs(spec, cfg), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabelUnion(b *testing.B) {
	tbl := taint.NewTable()
	labels := make([]taint.Label, 16)
	for i := range labels {
		labels[i] = tbl.Base(string(rune('a' + i)))
	}
	b.ResetTimer()
	var sink taint.Label
	for i := 0; i < b.N; i++ {
		// The hot-path union is the bare OR the interpreters inline; fold a
		// 16-label chain the way a tainted basic block would.
		l := taint.None
		for _, x := range labels {
			l = taint.Union(l, x)
		}
		sink |= l
	}
	if sink == taint.None {
		b.Fatal("union chain lost its labels")
	}
}

func BenchmarkPMNFSingleFit(b *testing.B) {
	d := extrap.NewDataset("x")
	for _, x := range []float64{4, 8, 16, 32, 64, 128} {
		d.Add(map[string]float64{"x": x}, 3*x+100, 3*x+101, 3*x+99)
	}
	opt := extrap.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extrap.ModelSingle(d, "x", opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPMNFMultiFit(b *testing.B) {
	d := extrap.NewDataset("p", "s")
	for _, p := range []float64{4, 8, 16, 32, 64} {
		for _, s := range []float64{32, 64, 128, 256, 512} {
			v := 1e-4 * p * s
			d.Add(map[string]float64{"p": p, "s": s}, v, v*1.01, v*0.99)
		}
	}
	opt := extrap.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extrap.ModelMulti(d, opt, nil); err != nil {
			b.Fatal(err)
		}
	}
}
