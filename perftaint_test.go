package perftaint

import (
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	spec := LULESH()
	rep, err := Analyze(spec, LULESHTaintConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Census([]string{"p", "size"}).FunctionsTotal; got != 356 {
		t.Fatalf("census total = %d, want 356", got)
	}

	d := NewDataset("p", "size")
	for _, p := range []float64{27, 64, 125, 343, 729} {
		for _, s := range []float64{25, 30, 35, 40, 45} {
			v := 2.4e-8 * math.Pow(p, 0.25) * s * s * s
			d.Add(map[string]float64{"p": p, "size": s}, v)
		}
	}
	prior := rep.Prior("CalcQForElems", []string{"p", "size"})
	m, err := FitWithPrior(d, prior)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Multiplicative() {
		t.Fatalf("expected multiplicative model, got %s", m)
	}
	got := m.Eval(map[string]float64{"p": 1000, "size": 50})
	want := 2.4e-8 * math.Pow(1000, 0.25) * 50 * 50 * 50
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("extrapolation %g, want %g (model %s)", got, want, m)
	}
}

func TestFacadeBlackBoxFit(t *testing.T) {
	d := NewDataset("x")
	for _, x := range []float64{2, 4, 8, 16, 32} {
		d.Add(map[string]float64{"x": x}, 5*x)
	}
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.IsConstant() {
		t.Fatalf("linear data fitted constant: %s", m)
	}
	ms, err := FitSingle(d, "x")
	if err != nil {
		t.Fatal(err)
	}
	if ms.IsConstant() {
		t.Fatalf("single fit constant: %s", ms)
	}
}

func TestFacadeMILC(t *testing.T) {
	rep, err := Analyze(MILC(), MILCTaintConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Census([]string{"p", "size"}).FunctionsTotal; got != 629 {
		t.Fatalf("census total = %d, want 629", got)
	}
}
